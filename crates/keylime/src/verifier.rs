//! The Keylime Cloud Verifier (CV).
//!
//! "The Cloud Verifier maintains the whitelist of trusted code and
//! checks server integrity" (§5). It polls agents for quotes against
//! fresh nonces, replays their boot and IMA logs, matches every
//! measurement against tenant whitelists, releases the V key share on
//! first success, and on any failure broadcasts a revocation so the rest
//! of the enclave can cryptographically ban the node (§7.4: detection in
//! under a second, full revocation in about three).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use bolted_sim::lock;

use bolted_crypto::rsa::PublicKey;
use bolted_crypto::sha256::Digest;
use bolted_sim::fault::{mix_seed, ops, Faults};
use bolted_sim::{
    channel, join_all, JoinHandle, Receiver, Resource, Rng, Sender, Sim, SimDuration, SimTime,
};
use bolted_sim::{CallEnv, Metrics, RetryError, RetryPolicy, SpanId, Spans};
use bolted_tpm::{index, PcrBank, Quote, TpmError};

use crate::agent::{Agent, AttestationEvidence};
use crate::ima::ImaWhitelist;
use crate::payload::KeyShare;
use crate::registrar::Registrar;

/// Timing and selection configuration for a verifier.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Continuous-attestation polling period.
    pub poll_interval: SimDuration,
    /// CPU time to verify one quote + replay logs (paper: "Keylime can
    /// detect policy violations ... in under one second").
    pub verify_cost: SimDuration,
    /// Network round-trip between verifier and agent.
    pub rtt: SimDuration,
    /// Bandwidth for delivering the sealed payload — kernel + initrd
    /// over the paper's unoptimised HTTP path ("obvious opportunities
    /// include better download protocols than HTTP", §7.3 fn 8).
    pub payload_bps: f64,
    /// PCRs quoted during boot attestation.
    pub boot_selection: Vec<usize>,
    /// PCRs quoted during continuous attestation (adds IMA's PCR 10).
    pub continuous_selection: Vec<usize>,
    /// Retry discipline for the quote round-trip (dropped RPCs under a
    /// fault plan are retried with backoff; agent rejections are not).
    pub retry: RetryPolicy,
    /// Worker-thread count for the batch quote-signature pool (the
    /// `parallel-verify` feature); `None` uses the host's parallelism.
    /// The pool's chunking is a fixed constant either way — the worker
    /// count only affects which thread runs a chunk, never the results
    /// or any accounting derived from them.
    pub batch_workers: Option<usize>,
    /// Verification capacity: how many quote verifications the verifier
    /// can run concurrently (FIFO beyond that). `None` models unbounded
    /// capacity — every round charges `verify_cost` with no queueing —
    /// which is byte-identical to the pre-capacity behaviour. A small
    /// `Some(n)` makes the verifier a saturable shared service, the
    /// surface a quote-storm DoS attacks.
    pub verify_slots: Option<usize>,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            poll_interval: SimDuration::from_secs(2),
            verify_cost: SimDuration::from_millis(150),
            rtt: SimDuration::from_millis(5),
            payload_bps: 6e6,
            boot_selection: vec![index::FIRMWARE, index::BOOT_CODE, index::BOOT_CONFIG],
            continuous_selection: vec![
                index::FIRMWARE,
                index::BOOT_CODE,
                index::BOOT_CONFIG,
                index::IMA,
            ],
            retry: RetryPolicy::default(),
            batch_workers: None,
            verify_slots: None,
        }
    }
}

/// Result of one attestation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestOutcome {
    /// Everything matched the whitelists.
    Trusted,
    /// Verification failed; node is revoked.
    Failed(String),
    /// The quote round-trip never completed: injected RPC drops outlived
    /// the retry budget. Infrastructure gave out — the node is *not*
    /// revoked or quarantined; the caller decides whether to release it.
    Unreachable {
        /// Quote attempts made before giving up.
        attempts: u32,
    },
}

/// A revocation broadcast to enclave members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationEvent {
    /// Node that failed attestation.
    pub node_id: String,
    /// Why.
    pub reason: String,
    /// When the verifier detected it.
    pub detected_at: SimTime,
}

/// Per-node verifier status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeStatus {
    /// Registered, not yet attested.
    Pending,
    /// Last attestation passed.
    Trusted,
    /// Attestation failed; revoked.
    Failed(String),
}

struct NodeState {
    agent: Agent,
    boot_whitelist: HashSet<Digest>,
    ima_whitelist: ImaWhitelist,
    v_share: Option<KeyShare>,
    sealed_payload: Vec<u8>,
    /// Extra bytes (kernel + initrd) shipped alongside the sealed blob,
    /// for delivery timing.
    payload_wire_bytes: u64,
    status: NodeStatus,
    bootstrapped: bool,
    /// Atomic so concurrent attestation rounds (and any future
    /// off-sim-thread accounting) increment without read-modify-write
    /// races; reads use `Ordering::Relaxed` — it is a plain counter.
    quotes_verified: AtomicU64,
    detected_at: Option<SimTime>,
    stop: bool,
}

struct VerifierInner {
    nodes: HashMap<String, NodeState>,
    subscribers: Vec<Sender<RevocationEvent>>,
    nonce_counter: u64,
}

/// AIK→verified-key cache: repeated quotes from the same node skip the
/// registrar lookup, and the cached [`PublicKey`] clones share one
/// Montgomery context, so only the first verification pays setup.
///
/// Entries are invalidated on signature mismatch so a node that
/// re-registers with a fresh AIK is re-fetched, not rejected. Under
/// concurrent attestation that invalidation races the fill path
/// (check-miss → registrar fetch → insert): a reader that fetched the
/// *old* key before an invalidation must not re-insert it afterwards.
/// Each node therefore carries an invalidation epoch; a fill records the
/// epoch before its fetch and only lands if no invalidation intervened —
/// **a stale entry re-inserted after invalidation always loses**.
#[derive(Default)]
struct AikCache {
    inner: RwLock<AikCacheInner>,
}

#[derive(Default)]
struct AikCacheInner {
    keys: HashMap<String, PublicKey>,
    /// Per-node invalidation epoch; bumped by every [`AikCache::invalidate`].
    epochs: HashMap<String, u64>,
}

impl AikCache {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, AikCacheInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, AikCacheInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached key, if any.
    fn get(&self, node_id: &str) -> Option<PublicKey> {
        self.read().keys.get(node_id).cloned()
    }

    /// The node's current invalidation epoch. Read *before* fetching
    /// from the registrar; pass to [`AikCache::insert_if_current`].
    fn epoch(&self, node_id: &str) -> u64 {
        self.read().epochs.get(node_id).copied().unwrap_or(0)
    }

    /// Inserts a freshly fetched key unless the node was invalidated
    /// since `fetch_epoch` was read. Returns whether the insert landed.
    fn insert_if_current(&self, node_id: &str, key: PublicKey, fetch_epoch: u64) -> bool {
        let mut inner = self.write();
        let current = inner.epochs.get(node_id).copied().unwrap_or(0);
        if current != fetch_epoch {
            return false; // invalidated mid-fetch: the stale key loses
        }
        inner.keys.insert(node_id.to_string(), key);
        true
    }

    /// Drops the node's entry and bumps its epoch, so any in-flight fill
    /// that started before this call is rejected when it lands.
    fn invalidate(&self, node_id: &str) {
        let mut inner = self.write();
        inner.keys.remove(node_id);
        *inner.epochs.entry(node_id.to_string()).or_insert(0) += 1;
    }
}

/// Evidence collected from an agent, awaiting verification — the output
/// of the network/quote half of an attestation round.
struct PendingAttest {
    node_id: String,
    agent: Agent,
    nonce: [u8; 32],
    selection: Vec<usize>,
    evidence: AttestationEvidence,
    /// The open `quote-verify` span, closed when the verdict lands.
    span: SpanId,
}

/// The Cloud Verifier service (tenant-deployable).
#[derive(Clone)]
pub struct Verifier {
    registrar: Registrar,
    config: VerifierConfig,
    /// The shared instrumented call path: clock, fault handle, span
    /// recorder and metrics registry behind one install point.
    env: CallEnv,
    inner: Arc<Mutex<VerifierInner>>,
    aik_cache: Arc<AikCache>,
    /// FIFO verification slots when [`VerifierConfig::verify_slots`] is
    /// bounded; `None` means infinite capacity (no queue, no contention).
    verify_slots: Option<Resource>,
}

impl Verifier {
    /// Creates a verifier bound to a registrar.
    pub fn new(sim: &Sim, registrar: &Registrar, config: VerifierConfig) -> Self {
        Verifier {
            registrar: registrar.clone(),
            verify_slots: config.verify_slots.map(|n| Resource::new(sim, n.max(1))),
            config,
            env: CallEnv::new(sim),
            inner: Arc::new(Mutex::new(VerifierInner {
                nodes: HashMap::new(),
                subscribers: Vec::new(),
                nonce_counter: 0,
            })),
            aik_cache: Arc::new(AikCache::default()),
        }
    }

    fn sim(&self) -> &Sim {
        self.env.sim()
    }

    /// Installs a fault-injection handle; quote round-trips consult it
    /// (existing clones of this verifier see it too).
    pub fn set_faults(&self, faults: &Faults) {
        self.env.set_faults(faults);
    }

    /// Installs span/metrics recorders (existing clones see them too).
    /// Each attestation round records a `keylime/quote-verify` span that
    /// closes when the verdict lands — *before* any key material moves —
    /// plus quote retry/verdict counters.
    pub fn set_observability(&self, spans: &Spans, metrics: &Metrics) {
        self.env.set_observability(spans, metrics);
    }

    /// The active configuration.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Registers a node for verification with its whitelists and (for
    /// security-sensitive tenants) the V share + sealed payload to
    /// release on first success.
    pub fn add_node(
        &self,
        agent: &Agent,
        boot_whitelist: HashSet<Digest>,
        ima_whitelist: ImaWhitelist,
        v_share: Option<KeyShare>,
        sealed_payload: Vec<u8>,
        payload_wire_bytes: u64,
    ) {
        lock(&self.inner).nodes.insert(
            agent.id().to_string(),
            NodeState {
                agent: agent.clone(),
                boot_whitelist,
                ima_whitelist,
                v_share,
                sealed_payload,
                payload_wire_bytes,
                status: NodeStatus::Pending,
                bootstrapped: false,
                quotes_verified: AtomicU64::new(0),
                detected_at: None,
                stop: false,
            },
        );
    }

    /// Subscribes to revocation broadcasts.
    pub fn subscribe_revocations(&self) -> Receiver<RevocationEvent> {
        let (tx, rx) = channel();
        lock(&self.inner).subscribers.push(tx);
        rx
    }

    /// Current status of a node.
    pub fn status(&self, node_id: &str) -> Option<NodeStatus> {
        lock(&self.inner)
            .nodes
            .get(node_id)
            .map(|n| n.status.clone())
    }

    /// When the verifier first detected a violation on the node.
    pub fn detected_at(&self, node_id: &str) -> Option<SimTime> {
        lock(&self.inner).nodes.get(node_id)?.detected_at
    }

    /// Quotes successfully verified for a node so far.
    pub fn quotes_verified(&self, node_id: &str) -> u64 {
        lock(&self.inner)
            .nodes
            .get(node_id)
            .map_or(0, |n| n.quotes_verified.load(Ordering::Relaxed))
    }

    fn fresh_nonce(&self) -> [u8; 32] {
        let mut inner = lock(&self.inner);
        inner.nonce_counter += 1;
        let d = bolted_crypto::sha256_concat(&[
            b"cv-nonce",
            &inner.nonce_counter.to_le_bytes(),
            &self.sim().now().as_nanos().to_le_bytes(),
        ]);
        *d.as_bytes()
    }

    /// Looks up a node's certified AIK, consulting the verifier's cache
    /// before the registrar. The fill is epoch-guarded: if the node is
    /// invalidated while the registrar fetch is in flight, the fetched
    /// key is returned to this caller but *not* cached (see [`AikCache`]).
    fn certified_aik_cached(&self, node_id: &str) -> Option<PublicKey> {
        if let Some(aik) = self.aik_cache.get(node_id) {
            return Some(aik);
        }
        let fetch_epoch = self.aik_cache.epoch(node_id);
        let aik = self.registrar.certified_aik(node_id)?;
        self.aik_cache
            .insert_if_current(node_id, aik.clone(), fetch_epoch);
        Some(aik)
    }

    /// Verifies evidence against the node's whitelists (pure check, no
    /// timing). Exposed for tests and custom tenant flows.
    pub fn verify_evidence(
        &self,
        node_id: &str,
        nonce: &[u8; 32],
        selection: &[usize],
        evidence: &AttestationEvidence,
    ) -> Result<(), String> {
        self.verify_evidence_inner(node_id, nonce, selection, evidence, None)
    }

    /// As [`Verifier::verify_evidence`], but the RSA quote-signature check
    /// may have been precomputed (on a worker thread by
    /// [`Verifier::attest_many`]); `None` means check it here. The check
    /// *order* is identical either way, so failure reasons — and therefore
    /// [`AttestOutcome`]s — match the sequential path exactly.
    fn verify_evidence_inner(
        &self,
        node_id: &str,
        nonce: &[u8; 32],
        selection: &[usize],
        evidence: &AttestationEvidence,
        precomputed_sig: Option<bool>,
    ) -> Result<(), String> {
        if !lock(&self.inner).nodes.contains_key(node_id) {
            return Err("unknown node".into());
        }
        // 1. The AIK must be certified by the registrar.
        let aik = self
            .certified_aik_cached(node_id)
            .ok_or("AIK not certified by registrar")?;
        // 2. Signature and freshness.
        let mut sig_ok = precomputed_sig.unwrap_or_else(|| evidence.quote.verify(&aik));
        if !sig_ok {
            // The node may have re-registered with a fresh AIK since the
            // cache entry was filled (remediation reboot, warm restart):
            // invalidate, re-fetch, and retry once before declaring the
            // quote bad. Genuinely forged quotes still fail — twice.
            self.aik_cache.invalidate(node_id);
            let fresh = self
                .certified_aik_cached(node_id)
                .ok_or("AIK not certified by registrar")?;
            if fresh != aik {
                sig_ok = evidence.quote.verify(&fresh);
            }
        }
        if !sig_ok {
            return Err("quote signature invalid".into());
        }
        let inner = lock(&self.inner);
        let node = inner.nodes.get(node_id).ok_or("unknown node")?;
        if &evidence.quote.nonce != nonce {
            return Err("stale nonce (replay?)".into());
        }
        if evidence.quote.selection != selection {
            return Err("quote covers wrong PCR selection".into());
        }
        // 3. The supplied logs must replay to the quoted PCR values.
        let boot_pcrs = evidence.boot_log.replay();
        let expected = PcrBank::composite_of(selection, |i| {
            if i == index::IMA {
                evidence.ima_log.replay_pcr()
            } else {
                // lint: allow(L1-index: selection equals the verifier's own
                // configured PCR list (checked above), whose indices are
                // bounded by the TPM's PCR count)
                boot_pcrs[i]
            }
        });
        if expected != evidence.quote.composite() {
            return Err("event log does not replay to quoted PCRs".into());
        }
        // 4. Every boot measurement must be whitelisted.
        for ev in evidence.boot_log.events() {
            if ev.pcr_index != index::IMA && !node.boot_whitelist.contains(&ev.digest) {
                return Err(format!("unapproved boot measurement: {}", ev.description));
            }
        }
        // 5. Every IMA entry must be whitelisted (continuous only).
        if selection.contains(&index::IMA) {
            if let Err(v) = node.ima_whitelist.check(&evidence.ima_log) {
                return Err(format!("IMA violation: {} ({})", v.path, v.digest));
            }
        }
        Ok(())
    }

    async fn broadcast_revocation(&self, node_id: &str, reason: &str) {
        let event = RevocationEvent {
            node_id: node_id.to_string(),
            reason: reason.to_string(),
            detected_at: self.sim().now(),
        };
        // One notification RTT to reach subscribers (sent in parallel).
        self.sim().sleep(self.config.rtt).await;
        let subs: Vec<Sender<RevocationEvent>> = lock(&self.inner).subscribers.to_vec();
        for tx in subs {
            tx.send(event.clone());
        }
    }

    /// Runs one attestation round against a node, charging quote,
    /// network and verification time. `continuous` selects the PCR set.
    pub async fn attest_once(&self, node_id: &str, continuous: bool) -> AttestOutcome {
        match self.collect_evidence(node_id, continuous).await {
            Ok(pending) => self.finish_attest(pending, None).await,
            Err(outcome) => outcome,
        }
    }

    /// Network/quote half of an attestation round: nonce, RTTs, the
    /// agent's quote, and the verification CPU budget. Agent failures are
    /// recorded (and broadcast) here so the concurrent and sequential
    /// paths fail identically. An `Err` is the round's final outcome:
    /// `Failed` for protocol-level rejections, `Unreachable` when the
    /// quote RPC itself gave out.
    async fn collect_evidence(
        &self,
        node_id: &str,
        continuous: bool,
    ) -> Result<PendingAttest, AttestOutcome> {
        let (agent, selection) = {
            let inner = lock(&self.inner);
            let Some(node) = inner.nodes.get(node_id) else {
                return Err(AttestOutcome::Failed("unknown node".into()));
            };
            let sel = if continuous {
                self.config.continuous_selection.clone()
            } else {
                self.config.boot_selection.clone()
            };
            (node.agent.clone(), sel)
        };
        let nonce = self.fresh_nonce();
        let spans = self.env.spans();
        // The round's quote-verify span stays open until the verdict in
        // finish_attest, so key-material release is provably ordered
        // after its close.
        let span = spans.begin(self.sim(), "keylime", "quote-verify", node_id);
        // The quote round-trip [rtt → RPC → rtt] can be dropped by the
        // fault plan; dropped rounds retry with backoff. Agent *errors*
        // (the TPM refused to quote) are protocol outcomes, not network
        // noise: they abort immediately and revoke, exactly as before.
        // On the fault-free path the retry wrapper adds zero sleeps and
        // zero RNG draws, and the per-node jitter stream is seeded
        // locally, so timing is byte-identical to the pre-retry code.
        enum RoundError {
            Dropped,
            Agent(TpmError),
        }
        let faults = self.env.faults();
        let mut retry_rng = Rng::seed_from_u64(mix_seed(0x5EC0_11D5, &[node_id]));
        let op = || {
            let sim = self.sim().clone();
            let faults = faults.clone();
            let agent = agent.clone();
            let selection = selection.clone();
            let rtt = self.config.rtt;
            let id = node_id.to_string();
            async move {
                sim.sleep(rtt).await;
                faults
                    .gate(&sim, ops::VERIFIER_QUOTE, &id)
                    .await
                    .map_err(|_| RoundError::Dropped)?;
                let ev = agent
                    .attest(&sim, nonce, &selection)
                    .await
                    .map_err(RoundError::Agent)?;
                sim.sleep(rtt).await;
                Ok(ev)
            }
        };
        let evidence = match self
            .env
            .call(
                &self.config.retry,
                &mut retry_rng,
                "verifier.quote",
                node_id,
                op,
                |e| matches!(e, RoundError::Dropped),
            )
            .await
        {
            Ok(ev) => ev,
            Err(RetryError::Fatal {
                error: RoundError::Agent(e),
                ..
            }) => {
                let reason = format!("agent error: {e}");
                spans.attr(span, "outcome", "agent-error");
                spans.end(self.sim(), span);
                self.fail_node(node_id, &reason);
                self.broadcast_revocation(node_id, &reason).await;
                return Err(AttestOutcome::Failed(reason));
            }
            Err(e) => {
                // Exhausted/timed out on injected drops: infrastructure
                // failure, not evidence of compromise. No fail_node, no
                // revocation broadcast — the caller decides what to do
                // with an unreachable node.
                spans.attr(span, "outcome", "rpc-fault");
                spans.end(self.sim(), span);
                return Err(AttestOutcome::Unreachable {
                    attempts: e.attempts(),
                });
            }
        };
        // Verification CPU budget. Under bounded capacity the round
        // queues FIFO for a slot and holds it for the whole budget — a
        // saturated verifier is how a quote storm steals victim latency;
        // with unbounded capacity this is exactly the old plain sleep.
        match &self.verify_slots {
            Some(slots) => slots.visit(self.config.verify_cost).await,
            None => self.sim().sleep(self.config.verify_cost).await,
        }
        Ok(PendingAttest {
            node_id: node_id.to_string(),
            agent,
            nonce,
            selection,
            evidence,
            span,
        })
    }

    /// Verdict half of an attestation round: evidence checks, node state
    /// update, first-success payload delivery or revocation broadcast.
    async fn finish_attest(
        &self,
        pending: PendingAttest,
        precomputed_sig: Option<bool>,
    ) -> AttestOutcome {
        let PendingAttest {
            node_id,
            agent,
            nonce,
            selection,
            evidence,
            span,
        } = pending;
        let spans = self.env.spans();
        let metrics = self.env.metrics();
        match self.verify_evidence_inner(&node_id, &nonce, &selection, &evidence, precomputed_sig) {
            Ok(()) => {
                // Close the span at the verdict — strictly before any key
                // material moves, so span ordering proves the invariant.
                spans.attr(span, "outcome", "trusted");
                spans.end(self.sim(), span);
                metrics.inc(
                    "quote_verdicts",
                    &[("target", &node_id), ("outcome", "trusted")],
                );
                let deliver = {
                    let mut inner = lock(&self.inner);
                    inner.nodes.get_mut(&node_id).and_then(|node| {
                        // Revocation is sticky: a concurrent round may
                        // have failed this node between our verification
                        // and this update, and a late success must not
                        // un-revoke it.
                        if !matches!(node.status, NodeStatus::Failed(_)) {
                            node.status = NodeStatus::Trusted;
                        }
                        node.quotes_verified.fetch_add(1, Ordering::Relaxed);
                        if node.bootstrapped {
                            return None;
                        }
                        let v = node.v_share.clone()?;
                        node.bootstrapped = true;
                        Some((v, node.sealed_payload.clone(), node.payload_wire_bytes))
                    })
                };
                if let Some((v, sealed, wire)) = deliver {
                    // Payload download (kernel + initrd dominate).
                    let approx = sealed.len() as u64 + wire;
                    let t = SimDuration::from_secs_f64(approx as f64 / self.config.payload_bps);
                    self.sim().sleep(t + self.config.rtt).await;
                    // The guarded key-material event: V leaves the
                    // verifier only here, after the span above closed.
                    spans.event(self.sim(), "key", "v-release", &node_id);
                    metrics.inc("key_releases", &[("target", &node_id)]);
                    agent.deliver_v_and_payload(v, &sealed);
                }
                AttestOutcome::Trusted
            }
            Err(reason) => {
                spans.attr(span, "outcome", "failed");
                spans.attr(span, "reason", reason.clone());
                spans.end(self.sim(), span);
                metrics.inc(
                    "quote_verdicts",
                    &[("target", &node_id), ("outcome", "failed")],
                );
                self.fail_node(&node_id, &reason);
                self.broadcast_revocation(&node_id, &reason).await;
                AttestOutcome::Failed(reason)
            }
        }
    }

    /// Attests a fleet of nodes concurrently; returns one outcome per
    /// node, in input order, each identical to what a sequential
    /// [`Verifier::attest_once`] would have produced.
    ///
    /// Per-node quote collection runs as concurrent sim tasks, so the
    /// RTTs, TPM quote times and verification budgets overlap in
    /// *simulated* time instead of accumulating. Between the two sim
    /// phases, the RSA quote-signature checks — pure CPU, the *wall-clock*
    /// hot spot — run on a small `std::thread` pool when the
    /// `parallel-verify` feature is enabled (default).
    pub async fn attest_many(&self, node_ids: &[String], continuous: bool) -> Vec<AttestOutcome> {
        // Phase 1: collect evidence from every node concurrently.
        let handles: Vec<_> = node_ids
            .iter()
            .map(|id| {
                let this = self.clone();
                let id = id.clone();
                self.sim()
                    .spawn(async move { this.collect_evidence(&id, continuous).await })
            })
            .collect();
        let collected = join_all(handles).await;
        // Phase 2: batch-verify quote signatures off the sim thread.
        let jobs: Vec<Option<(Quote, PublicKey)>> = collected
            .iter()
            .map(|c| match c {
                Ok(p) => self
                    .certified_aik_cached(&p.node_id)
                    .map(|aik| (p.evidence.quote.clone(), aik)),
                Err(_) => None,
            })
            .collect();
        let sigs = verify_quote_batch(&jobs, self.config.batch_workers);
        // Phase 3: apply verdicts (and payload delivery / revocation
        // timing) concurrently, preserving input order in the result.
        let handles: Vec<_> = collected
            .into_iter()
            .zip(sigs)
            .map(|(c, sig)| {
                let this = self.clone();
                self.sim().spawn(async move {
                    match c {
                        Ok(pending) => this.finish_attest(pending, sig).await,
                        Err(outcome) => outcome,
                    }
                })
            })
            .collect();
        join_all(handles).await
    }

    fn fail_node(&self, node_id: &str, reason: &str) {
        let mut inner = lock(&self.inner);
        if let Some(node) = inner.nodes.get_mut(node_id) {
            node.status = NodeStatus::Failed(reason.to_string());
            if node.detected_at.is_none() {
                node.detected_at = Some(self.sim().now());
            }
        }
    }

    /// Spawns the continuous-attestation loop for a node; it polls every
    /// `poll_interval` until the node fails or [`Verifier::stop`] is
    /// called. Returns the number of successful rounds.
    pub fn spawn_continuous(&self, node_id: &str) -> JoinHandle<u64> {
        let this = self.clone();
        let node_id = node_id.to_string();
        self.sim().spawn(async move {
            let mut rounds = 0u64;
            loop {
                this.sim().sleep(this.config.poll_interval).await;
                let stopped = {
                    let inner = lock(&this.inner);
                    inner.nodes.get(&node_id).is_none_or(|n| n.stop)
                };
                if stopped {
                    break;
                }
                match this.attest_once(&node_id, true).await {
                    AttestOutcome::Trusted => rounds += 1,
                    AttestOutcome::Failed(_) | AttestOutcome::Unreachable { .. } => break,
                }
            }
            rounds
        })
    }

    /// Stops a node's continuous-attestation loop.
    pub fn stop(&self, node_id: &str) {
        if let Some(n) = lock(&self.inner).nodes.get_mut(node_id) {
            n.stop = true;
        }
    }
}

/// Fixed claim size for the batch-verify work queue. A constant — never
/// derived from the host's core count — so the job→chunk assignment (and
/// any order-sensitive accounting downstream of it) is identical on
/// every machine and at every pool size; the worker count only decides
/// which thread happens to claim a chunk.
#[cfg(feature = "parallel-verify")]
const BATCH_CHUNK: usize = 4;

/// Verifies a batch of quote signatures; `None` entries (no evidence or no
/// certified AIK) pass through as `None`. Quotes and keys are `Send`, so
/// with the `parallel-verify` feature the batch fans out over a small
/// thread pool (`workers`, defaulting to the host's parallelism); tiny
/// batches stay serial to skip thread spawn overhead. Results depend
/// only on the jobs — `out[i]` is a pure function of `jobs[i]` — so the
/// pool size never changes the output.
fn verify_quote_batch(
    jobs: &[Option<(Quote, PublicKey)>],
    workers: Option<usize>,
) -> Vec<Option<bool>> {
    #[cfg(feature = "parallel-verify")]
    {
        if jobs.iter().flatten().count() >= 2 {
            let threads = workers
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
                .min(8)
                .min(jobs.len())
                .max(1);
            return verify_quote_batch_parallel(jobs, threads);
        }
    }
    let _ = workers;
    jobs.iter()
        .map(|j| j.as_ref().map(|(q, aik)| q.verify(aik)))
        .collect()
}

#[cfg(feature = "parallel-verify")]
fn verify_quote_batch_parallel(
    jobs: &[Option<(Quote, PublicKey)>],
    threads: usize,
) -> Vec<Option<bool>> {
    use std::sync::atomic::AtomicUsize;

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<bool>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Atomic work queue claiming fixed BATCH_CHUNK runs:
                    // RSA verify times vary with the Montgomery cache
                    // state, so static per-thread partitioning would
                    // leave threads idle, but the chunk boundaries
                    // themselves stay host-independent.
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(BATCH_CHUNK, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        let end = (start + BATCH_CHUNK).min(jobs.len());
                        for (i, job) in jobs.iter().enumerate().take(end).skip(start) {
                            if let Some((quote, aik)) = job {
                                local.push((i, quote.verify(aik)));
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            // lint: allow(L1-panic: a panicked verify worker means a bug in
            // the signature code itself; propagating the panic is the only
            // sound option)
            for (i, ok) in worker.join().expect("verify worker panicked") {
                if let Some(slot) = out.get_mut(i) {
                    *slot = Some(ok);
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::agent_binary_digest;
    use crate::payload::{split_key, TenantPayload};
    use bolted_crypto::chacha20::Key;
    use bolted_crypto::prime::XorShiftSource;
    use bolted_crypto::secret::Secret;
    use bolted_firmware::{FirmwareKind, FirmwareSource, KernelImage, Machine};

    struct Rig {
        sim: Sim,
        machine: Machine,
        registrar: Registrar,
        verifier: Verifier,
        boot_whitelist: HashSet<Digest>,
    }

    fn rig() -> Rig {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let machine = Machine::new("node-1", fw.clone(), 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut boot_whitelist = HashSet::new();
        boot_whitelist.insert(fw.build_id);
        boot_whitelist.insert(agent_binary_digest());
        Rig {
            sim,
            machine,
            registrar,
            verifier,
            boot_whitelist,
        }
    }

    async fn boot_and_register(r: &Rig) -> Agent {
        r.machine.run_firmware(&r.sim).await.expect("boots");
        r.machine
            .measure_download("keylime-agent", agent_binary_digest())
            .expect("measures");
        let agent = Agent::start(&r.sim, "node-1", &r.machine).await;
        let mut rng = XorShiftSource::new(11);
        agent
            .register(&r.sim, &r.registrar, &mut rng)
            .await
            .expect("registers");
        agent
    }

    #[test]
    fn clean_boot_attests_trusted() {
        let r = rig();
        let outcome = r.sim.block_on({
            let (r2, v) = (r.machine.clone(), r.verifier.clone());
            let sim = r.sim.clone();
            let reg = r.registrar.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: r2,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        assert_eq!(outcome, AttestOutcome::Trusted);
        assert_eq!(r.verifier.status("node-1"), Some(NodeStatus::Trusted));
    }

    #[test]
    fn tampered_firmware_rejected() {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let evil_fw = fw.tampered(b"bootkit");
        let machine = Machine::new("node-1", evil_fw, 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut wl = HashSet::new();
        wl.insert(fw.build_id); // tenant approves only the clean build
        wl.insert(agent_binary_digest());
        let outcome = sim.block_on({
            let (sim2, m, reg, v) = (
                sim.clone(),
                machine.clone(),
                registrar.clone(),
                verifier.clone(),
            );
            async move {
                m.run_firmware(&sim2).await.expect("boots");
                m.measure_download("keylime-agent", agent_binary_digest())
                    .expect("measures");
                let agent = Agent::start(&sim2, "node-1", &m).await;
                let mut rng = XorShiftSource::new(11);
                agent
                    .register(&sim2, &reg, &mut rng)
                    .await
                    .expect("registers");
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        assert!(matches!(outcome, AttestOutcome::Failed(ref r) if r.contains("unapproved")));
        assert!(verifier.detected_at("node-1").is_some());
    }

    #[test]
    fn uncertified_aik_rejected() {
        let r = rig();
        let outcome = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                m.run_firmware(&sim).await.expect("boots");
                let agent = Agent::start(&sim, "node-1", &m).await;
                // Skip registration entirely.
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        assert!(matches!(outcome, AttestOutcome::Failed(ref e) if e.contains("not certified")));
    }

    #[test]
    fn successful_attestation_releases_payload() {
        let r = rig();
        let kernel = KernelImage::from_bytes("fedora", b"vmlinuz");
        let k = Key([4u8; 32]);
        let mut rng = XorShiftSource::new(2);
        let (u, v_share) = split_key(&k, &mut rng);
        let payload = TenantPayload {
            kernel_name: kernel.name.clone(),
            kernel_digest: kernel.digest,
            kernel_size: 1 << 20,
            cmdline: "quiet".into(),
            luks_passphrase: Secret::named("luks_passphrase", b"pw".to_vec()),
            ipsec_psk: b"psk".to_vec(),
            script: "kexec".into(),
        };
        let sealed = payload.seal(&k);
        let got = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                agent.deliver_u(u);
                v.add_node(
                    &agent,
                    wl,
                    ImaWhitelist::new(),
                    Some(v_share),
                    sealed,
                    1 << 20,
                );
                let outcome = v.attest_once("node-1", false).await;
                (outcome, agent.payload())
            }
        });
        assert_eq!(got.0, AttestOutcome::Trusted);
        let p = got.1.expect("payload delivered after attestation");
        assert_eq!(p.luks_passphrase.expose(), b"pw");
        assert_eq!(p.ipsec_psk, b"psk");
    }

    #[test]
    fn continuous_attestation_detects_ima_violation() {
        let r = rig();
        let (rounds, detected, revocation) = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                let mut ima_wl = ImaWhitelist::new();
                ima_wl.allow_content("/usr/bin/make", b"make");
                v.add_node(&agent, wl, ima_wl, None, Vec::new(), 0);
                let rx = v.subscribe_revocations();
                let handle = v.spawn_continuous("node-1");
                // Behave for a while, then run malware.
                let sim2 = sim.clone();
                let agent2 = agent.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_secs(10)).await;
                    agent2.ima_measure("/usr/bin/make", b"make"); // fine
                    sim2.sleep(SimDuration::from_secs(10)).await;
                    agent2.ima_measure("/tmp/cryptominer", b"evil"); // not fine
                });
                let rounds = handle.await;
                let detected = v.detected_at("node-1");
                let ev = rx.recv().await;
                (rounds, detected, ev)
            }
        });
        assert!(rounds >= 3, "some clean rounds first, got {rounds}");
        let detected = detected.expect("violation detected");
        // Malware ran at t=20s (plus boot time offset); detection within
        // one poll interval + verification time of the *next* quote.
        let ev = revocation.expect("revocation broadcast");
        assert_eq!(ev.node_id, "node-1");
        assert!(ev.reason.contains("cryptominer"));
        assert_eq!(ev.detected_at, detected);
    }

    #[test]
    fn stopped_loop_ends_cleanly() {
        let r = rig();
        let rounds = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                let handle = v.spawn_continuous("node-1");
                let sim2 = sim.clone();
                let v2 = v.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_secs(9)).await;
                    v2.stop("node-1");
                });
                handle.await
            }
        });
        assert!(rounds >= 1);
        assert_eq!(r.verifier.status("node-1"), Some(NodeStatus::Trusted));
    }

    #[test]
    fn replayed_quote_rejected() {
        let r = rig();
        let err = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                // Capture evidence for an old nonce, then present it
                // against a new nonce.
                let sel = v.config().boot_selection.clone();
                let old = agent.attest(&sim, [1; 32], &sel).await.expect("attests");
                v.verify_evidence("node-1", &[2; 32], &sel, &old)
                    .unwrap_err()
            }
        });
        assert!(err.contains("stale nonce"), "got: {err}");
    }

    #[test]
    fn forged_ima_log_rejected() {
        // An attacker who strips entries from the IMA list cannot match
        // the quoted PCR 10.
        let r = rig();
        let err = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                let mut ima_wl = ImaWhitelist::new();
                ima_wl.allow_content("/usr/bin/ls", b"ls");
                v.add_node(&agent, wl, ima_wl, None, Vec::new(), 0);
                agent.ima_measure("/usr/bin/ls", b"ls");
                agent.ima_measure("/tmp/evil", b"malware");
                let sel = v.config().continuous_selection.clone();
                let nonce = [3u8; 32];
                let mut ev = agent.attest(&sim, nonce, &sel).await.expect("attests");
                // Strip the incriminating entry.
                let mut clean = crate::ima::ImaLog::new();
                let mut scratch = bolted_tpm::Tpm::new(99, 512);
                clean.measure(&mut scratch, "/usr/bin/ls", b"ls");
                ev.ima_log = clean;
                v.verify_evidence("node-1", &nonce, &sel, &ev).unwrap_err()
            }
        });
        assert!(err.contains("does not replay"), "got: {err}");
    }

    #[test]
    fn transient_quote_drops_retried_to_trusted() {
        use bolted_sim::fault::{FaultPlan, FaultSpec};
        let r = rig();
        let faults = Faults::new(FaultPlan::seeded(7).with_target(
            ops::VERIFIER_QUOTE,
            "node-1",
            FaultSpec::flaky(2),
        ));
        r.verifier.set_faults(&faults);
        let outcome = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        // Two dropped round-trips, then success on the third attempt.
        assert_eq!(outcome, AttestOutcome::Trusted);
        assert_eq!(faults.injected(ops::VERIFIER_QUOTE), 2);
        assert_eq!(r.verifier.status("node-1"), Some(NodeStatus::Trusted));
    }

    #[test]
    fn exhausted_quote_rpc_fails_without_revocation() {
        use bolted_sim::fault::{FaultPlan, FaultSpec};
        let r = rig();
        let faults = Faults::new(FaultPlan::seeded(7).with_target(
            ops::VERIFIER_QUOTE,
            "node-1",
            FaultSpec::permanent(),
        ));
        r.verifier.set_faults(&faults);
        let (outcome, revocation) = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                let rx = v.subscribe_revocations();
                let outcome = v.attest_once("node-1", false).await;
                (outcome, rx.try_recv())
            }
        });
        // An unreachable verifier RPC is an infrastructure failure, not
        // evidence of compromise: the typed outcome carries the attempt
        // count and the node is neither marked Failed nor revoked.
        match outcome {
            AttestOutcome::Unreachable { attempts } => {
                assert_eq!(attempts, VerifierConfig::default().retry.max_attempts)
            }
            other => panic!("expected infra failure, got {other:?}"),
        }
        assert!(revocation.is_none(), "no revocation for infra faults");
        assert!(r.verifier.detected_at("node-1").is_none());
        assert_eq!(r.verifier.status("node-1"), Some(NodeStatus::Pending));
    }

    /// A remediation reboot creates a fresh AIK under the same EK; the
    /// verifier's AIK cache still holds the old key. The invalidate-and
    /// -retry-once path must refetch from the registrar and accept the
    /// new quote rather than declaring the signature forged.
    #[test]
    fn aik_cache_refreshed_after_reregistration() {
        let r = rig();
        let (first, second, quotes) = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m.clone(),
                    registrar: reg.clone(),
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl.clone(), ImaWhitelist::new(), None, Vec::new(), 0);
                let first = v.attest_once("node-1", false).await; // warms the AIK cache
                                                                  // Reboot: fresh AIK on the same TPM (same EK), re-register,
                                                                  // re-add. The verifier's cache entry is now stale.
                m.power_cycle();
                let agent2 = boot_and_register(&rig_ref).await;
                v.add_node(&agent2, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                let second = v.attest_once("node-1", false).await;
                (first, second, v.quotes_verified("node-1"))
            }
        });
        assert_eq!(first, AttestOutcome::Trusted);
        assert_eq!(second, AttestOutcome::Trusted);
        // add_node replaced the node state, so only the post-reboot quote
        // is counted — proof the second round went through verification.
        assert_eq!(quotes, 1);
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;
    use crate::agent::{agent_binary_digest, Agent};
    use crate::payload::{split_key, TenantPayload};
    use bolted_crypto::chacha20::Key;
    use bolted_crypto::prime::XorShiftSource;
    use bolted_crypto::secret::Secret;
    use bolted_crypto::sha256::sha256;
    use bolted_firmware::{FirmwareKind, FirmwareSource, Machine};

    /// The V share and payload must be released exactly once, even across
    /// repeated successful attestations (re-delivery would let a later
    /// compromise re-fetch keys).
    #[test]
    fn payload_delivered_exactly_once() {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "v", b"src").build();
        let machine = Machine::new("node-1", fw.clone(), 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut wl = HashSet::new();
        wl.insert(fw.build_id);
        wl.insert(agent_binary_digest());
        let outcomes = sim.block_on({
            let (sim2, m, reg, v) = (
                sim.clone(),
                machine.clone(),
                registrar.clone(),
                verifier.clone(),
            );
            async move {
                m.run_firmware(&sim2).await.expect("boots");
                m.measure_download("keylime-agent", agent_binary_digest())
                    .expect("measures");
                let agent = Agent::start(&sim2, "node-1", &m).await;
                let mut rng = XorShiftSource::new(11);
                agent
                    .register(&sim2, &reg, &mut rng)
                    .await
                    .expect("registers");
                let k = Key([9u8; 32]);
                let (u, v_share) = split_key(&k, &mut rng);
                let payload = TenantPayload {
                    kernel_name: "k".into(),
                    kernel_digest: sha256(b"k"),
                    kernel_size: 1,
                    cmdline: String::new(),
                    luks_passphrase: Secret::named("luks_passphrase", b"pw".to_vec()),
                    ipsec_psk: Vec::new(),
                    script: String::new(),
                };
                agent.deliver_u(u);
                v.add_node(
                    &agent,
                    wl,
                    ImaWhitelist::new(),
                    Some(v_share),
                    payload.seal(&k),
                    0,
                );
                let first = v.attest_once("node-1", false).await;
                let t_first = sim2.now();
                let second = v.attest_once("node-1", false).await;
                let t_second_elapsed = sim2.now().since(t_first);
                (first, second, t_second_elapsed, agent.payload().is_some())
            }
        });
        assert_eq!(outcomes.0, AttestOutcome::Trusted);
        assert_eq!(outcomes.1, AttestOutcome::Trusted);
        assert!(outcomes.3, "payload delivered on the first pass");
        // Second round must not re-pay the payload delivery time: it is
        // just quote + rtt + verify (well under 2 seconds).
        assert!(
            outcomes.2.as_secs_f64() < 2.0,
            "second attestation re-delivered the payload: {}",
            outcomes.2
        );
        assert_eq!(verifier.quotes_verified("node-1"), 2);
    }
}

#[cfg(test)]
mod fleet_tests {
    use super::*;
    use crate::agent::agent_binary_digest;
    use bolted_crypto::prime::XorShiftSource;
    use bolted_firmware::{FirmwareKind, FirmwareSource, Machine};

    /// Builds a fleet of `n` machines named `node-0..n`; indices listed in
    /// `tampered` boot a firmware build the tenant never approved. Returns
    /// per-node outcomes and the simulated seconds the attestation phase
    /// took (setup excluded).
    fn run_fleet(n: usize, tampered: &[usize], batched: bool) -> (Vec<AttestOutcome>, f64) {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let evil = fw.tampered(b"bootkit");
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut wl = HashSet::new();
        wl.insert(fw.build_id);
        wl.insert(agent_binary_digest());
        let machines: Vec<Machine> = (0..n)
            .map(|i| {
                let image = if tampered.contains(&i) {
                    evil.clone()
                } else {
                    fw.clone()
                };
                let m = Machine::new(format!("node-{i}"), image, 7 + i as u64, 512, 64);
                m.power_on();
                m
            })
            .collect();
        sim.block_on({
            let sim = sim.clone();
            let registrar = registrar.clone();
            let verifier = verifier.clone();
            async move {
                let mut ids = Vec::new();
                for (i, m) in machines.iter().enumerate() {
                    m.run_firmware(&sim).await.expect("boots");
                    m.measure_download("keylime-agent", agent_binary_digest())
                        .expect("measures");
                    let agent = Agent::start(&sim, format!("node-{i}"), m).await;
                    let mut rng = XorShiftSource::new(11 + i as u64);
                    agent
                        .register(&sim, &registrar, &mut rng)
                        .await
                        .expect("registers");
                    verifier.add_node(&agent, wl.clone(), ImaWhitelist::new(), None, Vec::new(), 0);
                    ids.push(format!("node-{i}"));
                }
                let t0 = sim.now();
                let outcomes = if batched {
                    verifier.attest_many(&ids, false).await
                } else {
                    let mut out = Vec::new();
                    for id in &ids {
                        out.push(verifier.attest_once(id, false).await);
                    }
                    out
                };
                (outcomes, sim.now().since(t0).as_secs_f64())
            }
        })
    }

    /// The acceptance criterion: attest_many over >= 8 nodes (one of them
    /// tampered) must yield outcomes identical to N sequential
    /// attest_once calls — same variants, same failure strings.
    #[test]
    fn attest_many_matches_sequential_outcomes() {
        let (sequential, t_seq) = run_fleet(8, &[3], false);
        let (batched, t_batch) = run_fleet(8, &[3], true);
        assert_eq!(sequential.len(), 8);
        assert_eq!(batched, sequential);
        for (i, outcome) in batched.iter().enumerate() {
            if i == 3 {
                assert!(
                    matches!(outcome, AttestOutcome::Failed(r) if r.contains("unapproved")),
                    "node-3 boots tampered firmware: {outcome:?}"
                );
            } else {
                assert_eq!(outcome, &AttestOutcome::Trusted, "node-{i}");
            }
        }
        // Concurrency must compress simulated time: the batch overlaps
        // every node's quote + RTT + verification budget.
        assert!(
            t_batch < t_seq / 2.0,
            "batched {t_batch}s not faster than sequential {t_seq}s"
        );
    }

    #[test]
    fn attest_many_flags_unknown_nodes() {
        let (outcomes, _) = {
            let sim = Sim::new();
            let registrar = Registrar::new();
            let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
            let ids = vec!["ghost-1".to_string(), "ghost-2".to_string()];
            (
                sim.block_on(async move { verifier.attest_many(&ids, false).await }),
                (),
            )
        };
        assert_eq!(
            outcomes,
            vec![
                AttestOutcome::Failed("unknown node".into()),
                AttestOutcome::Failed("unknown node".into())
            ]
        );
    }

    /// Satellite: hammer one node with concurrent attest_once rounds. The
    /// accounting (quotes_verified, status, exactly-once payload flag)
    /// must survive arbitrary interleaving at await points.
    #[test]
    fn concurrent_rounds_on_one_node_account_correctly() {
        const ROUNDS: usize = 10;
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let machine = Machine::new("node-0", fw.clone(), 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut wl = HashSet::new();
        wl.insert(fw.build_id);
        wl.insert(agent_binary_digest());
        let outcomes = sim.block_on({
            let sim = sim.clone();
            let registrar = registrar.clone();
            let verifier = verifier.clone();
            let machine = machine.clone();
            async move {
                machine.run_firmware(&sim).await.expect("boots");
                machine
                    .measure_download("keylime-agent", agent_binary_digest())
                    .expect("measures");
                let agent = Agent::start(&sim, "node-0", &machine).await;
                let mut rng = XorShiftSource::new(11);
                agent
                    .register(&sim, &registrar, &mut rng)
                    .await
                    .expect("registers");
                verifier.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                let handles: Vec<_> = (0..ROUNDS)
                    .map(|_| {
                        let v = verifier.clone();
                        sim.spawn(async move { v.attest_once("node-0", false).await })
                    })
                    .collect();
                join_all(handles).await
            }
        });
        assert_eq!(outcomes.len(), ROUNDS);
        assert!(outcomes.iter().all(|o| o == &AttestOutcome::Trusted));
        assert_eq!(verifier.quotes_verified("node-0"), ROUNDS as u64);
        assert_eq!(verifier.status("node-0"), Some(NodeStatus::Trusted));
    }

    /// As [`run_fleet`], but batched with a pinned batch-verify pool
    /// size and full observability, returning the metrics snapshot JSON.
    fn run_fleet_metrics(
        n: usize,
        tampered: &[usize],
        workers: usize,
    ) -> (Vec<AttestOutcome>, String) {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let evil = fw.tampered(b"bootkit");
        let registrar = Registrar::new();
        let config = VerifierConfig {
            batch_workers: Some(workers),
            ..VerifierConfig::default()
        };
        let verifier = Verifier::new(&sim, &registrar, config);
        let spans = Spans::new();
        let metrics = Metrics::new();
        verifier.set_observability(&spans, &metrics);
        let mut wl = HashSet::new();
        wl.insert(fw.build_id);
        wl.insert(agent_binary_digest());
        let machines: Vec<Machine> = (0..n)
            .map(|i| {
                let image = if tampered.contains(&i) {
                    evil.clone()
                } else {
                    fw.clone()
                };
                let m = Machine::new(format!("node-{i}"), image, 7 + i as u64, 512, 64);
                m.power_on();
                m
            })
            .collect();
        let outcomes = sim.block_on({
            let sim = sim.clone();
            let registrar = registrar.clone();
            let verifier = verifier.clone();
            async move {
                let mut ids = Vec::new();
                for (i, m) in machines.iter().enumerate() {
                    m.run_firmware(&sim).await.expect("boots");
                    m.measure_download("keylime-agent", agent_binary_digest())
                        .expect("measures");
                    let agent = Agent::start(&sim, format!("node-{i}"), m).await;
                    let mut rng = XorShiftSource::new(11 + i as u64);
                    agent
                        .register(&sim, &registrar, &mut rng)
                        .await
                        .expect("registers");
                    verifier.add_node(&agent, wl.clone(), ImaWhitelist::new(), None, Vec::new(), 0);
                    ids.push(format!("node-{i}"));
                }
                verifier.attest_many(&ids, false).await
            }
        });
        (outcomes, metrics.to_json())
    }

    /// Satellite: the batch-verify pool size (previously derived from
    /// `available_parallelism`, i.e. the host) must never change
    /// outcomes or the metrics snapshot — worker count is scheduling
    /// only, chunking is a fixed constant.
    #[test]
    fn batch_pool_size_never_changes_results_or_metrics() {
        let (o1, m1) = run_fleet_metrics(9, &[2], 1);
        let (o2, m2) = run_fleet_metrics(9, &[2], 2);
        let (o8, m8) = run_fleet_metrics(9, &[2], 8);
        assert_eq!(o1, o2);
        assert_eq!(o1, o8);
        assert_eq!(m1, m2, "metrics snapshot differs between 1 and 2 workers");
        assert_eq!(m1, m8, "metrics snapshot differs between 1 and 8 workers");
    }
}

#[cfg(test)]
mod aik_cache_tests {
    use std::sync::atomic::AtomicBool;

    use super::*;
    use bolted_crypto::rsa::keypair_from_seed;

    /// Satellite: the exact interleaving the old check-then-insert cache
    /// got wrong. A fill reads the registrar, an invalidation lands
    /// while the fetch is in flight, and the stale key is inserted
    /// afterwards — under the epoch guard the stale insert must lose.
    #[test]
    fn stale_fill_reinserted_after_invalidation_loses() {
        let cache = AikCache::default();
        let old_key = keypair_from_seed(512, 1).public;
        let new_key = keypair_from_seed(512, 2).public;
        // Fill path: cache miss, epoch read, registrar fetch starts...
        let fetch_epoch = cache.epoch("node-0");
        // ...the node re-registers; its entry is invalidated mid-fetch.
        cache.invalidate("node-0");
        // The stale fill lands late and must be rejected.
        assert!(
            !cache.insert_if_current("node-0", old_key, fetch_epoch),
            "stale AIK re-inserted after invalidation won the race"
        );
        assert_eq!(cache.get("node-0"), None);
        // A fill that starts after the invalidation lands normally.
        let e2 = cache.epoch("node-0");
        assert!(cache.insert_if_current("node-0", new_key.clone(), e2));
        assert_eq!(cache.get("node-0"), Some(new_key));
    }

    /// Satellite: concurrent invalidate-vs-attest hammer. Readers race
    /// the miss→fetch→insert fill path against a writer that keeps
    /// re-registering (fresh key) and invalidating. After the writer's
    /// final re-registration, no stale key may ever be served again.
    #[test]
    fn concurrent_invalidate_vs_attest_never_resurrects_a_stale_key() {
        const SWAPS: usize = 50;
        let cache = Arc::new(AikCache::default());
        let keys: Vec<PublicKey> = (0..4)
            .map(|i| keypair_from_seed(512, 10 + i as u64).public)
            .collect();
        // Registrar stand-in: the currently certified key.
        let registrar = Arc::new(Mutex::new(keys[0].clone()));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let registrar = Arc::clone(&registrar);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        // The attest fill path: miss → epoch → fetch →
                        // guarded insert, with a yield to widen the
                        // fetch window the invalidation races into.
                        if cache.get("node-0").is_none() {
                            let e = cache.epoch("node-0");
                            let fetched = lock(&registrar).clone();
                            std::thread::yield_now();
                            cache.insert_if_current("node-0", fetched, e);
                        }
                    }
                })
            })
            .collect();
        for i in 1..=SWAPS {
            // Re-registration: the registrar certifies a fresh AIK,
            // then the verifier invalidates its cache entry.
            let key = keys[i % keys.len()].clone();
            *lock(&registrar) = key;
            cache.invalidate("node-0");
            std::thread::yield_now();
        }
        let final_key = lock(&registrar).clone();
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            // lint: allow(L1-panic: test-only join; a panicked reader is
            // itself the failure being surfaced)
            r.join().expect("reader panicked");
        }
        // Every insert that landed after the final invalidation read the
        // final epoch, and therefore fetched the final key. Anything
        // else would be the stale-resurrection bug.
        if let Some(served) = cache.get("node-0") {
            assert_eq!(served, final_key, "cache serves a pre-invalidation AIK");
        }
    }
}
