//! The Keylime Cloud Verifier (CV).
//!
//! "The Cloud Verifier maintains the whitelist of trusted code and
//! checks server integrity" (§5). It polls agents for quotes against
//! fresh nonces, replays their boot and IMA logs, matches every
//! measurement against tenant whitelists, releases the V key share on
//! first success, and on any failure broadcasts a revocation so the rest
//! of the enclave can cryptographically ban the node (§7.4: detection in
//! under a second, full revocation in about three).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use bolted_crypto::sha256::Digest;
use bolted_sim::{channel, JoinHandle, Receiver, Sender, Sim, SimDuration, SimTime};
use bolted_tpm::{index, PcrBank};

use crate::agent::{Agent, AttestationEvidence};
use crate::ima::ImaWhitelist;
use crate::payload::KeyShare;
use crate::registrar::Registrar;

/// Timing and selection configuration for a verifier.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Continuous-attestation polling period.
    pub poll_interval: SimDuration,
    /// CPU time to verify one quote + replay logs (paper: "Keylime can
    /// detect policy violations ... in under one second").
    pub verify_cost: SimDuration,
    /// Network round-trip between verifier and agent.
    pub rtt: SimDuration,
    /// Bandwidth for delivering the sealed payload — kernel + initrd
    /// over the paper's unoptimised HTTP path ("obvious opportunities
    /// include better download protocols than HTTP", §7.3 fn 8).
    pub payload_bps: f64,
    /// PCRs quoted during boot attestation.
    pub boot_selection: Vec<usize>,
    /// PCRs quoted during continuous attestation (adds IMA's PCR 10).
    pub continuous_selection: Vec<usize>,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            poll_interval: SimDuration::from_secs(2),
            verify_cost: SimDuration::from_millis(150),
            rtt: SimDuration::from_millis(5),
            payload_bps: 6e6,
            boot_selection: vec![index::FIRMWARE, index::BOOT_CODE, index::BOOT_CONFIG],
            continuous_selection: vec![
                index::FIRMWARE,
                index::BOOT_CODE,
                index::BOOT_CONFIG,
                index::IMA,
            ],
        }
    }
}

/// Result of one attestation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestOutcome {
    /// Everything matched the whitelists.
    Trusted,
    /// Verification failed; node is revoked.
    Failed(String),
}

/// A revocation broadcast to enclave members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationEvent {
    /// Node that failed attestation.
    pub node_id: String,
    /// Why.
    pub reason: String,
    /// When the verifier detected it.
    pub detected_at: SimTime,
}

/// Per-node verifier status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeStatus {
    /// Registered, not yet attested.
    Pending,
    /// Last attestation passed.
    Trusted,
    /// Attestation failed; revoked.
    Failed(String),
}

struct NodeState {
    agent: Agent,
    boot_whitelist: HashSet<Digest>,
    ima_whitelist: ImaWhitelist,
    v_share: Option<KeyShare>,
    sealed_payload: Vec<u8>,
    /// Extra bytes (kernel + initrd) shipped alongside the sealed blob,
    /// for delivery timing.
    payload_wire_bytes: u64,
    status: NodeStatus,
    bootstrapped: bool,
    quotes_verified: u64,
    detected_at: Option<SimTime>,
    stop: bool,
}

struct VerifierInner {
    nodes: HashMap<String, NodeState>,
    subscribers: Vec<Sender<RevocationEvent>>,
    nonce_counter: u64,
}

/// The Cloud Verifier service (tenant-deployable).
#[derive(Clone)]
pub struct Verifier {
    sim: Sim,
    registrar: Registrar,
    config: VerifierConfig,
    inner: Rc<RefCell<VerifierInner>>,
}

impl Verifier {
    /// Creates a verifier bound to a registrar.
    pub fn new(sim: &Sim, registrar: &Registrar, config: VerifierConfig) -> Self {
        Verifier {
            sim: sim.clone(),
            registrar: registrar.clone(),
            config,
            inner: Rc::new(RefCell::new(VerifierInner {
                nodes: HashMap::new(),
                subscribers: Vec::new(),
                nonce_counter: 0,
            })),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Registers a node for verification with its whitelists and (for
    /// security-sensitive tenants) the V share + sealed payload to
    /// release on first success.
    pub fn add_node(
        &self,
        agent: &Agent,
        boot_whitelist: HashSet<Digest>,
        ima_whitelist: ImaWhitelist,
        v_share: Option<KeyShare>,
        sealed_payload: Vec<u8>,
        payload_wire_bytes: u64,
    ) {
        self.inner.borrow_mut().nodes.insert(
            agent.id().to_string(),
            NodeState {
                agent: agent.clone(),
                boot_whitelist,
                ima_whitelist,
                v_share,
                sealed_payload,
                payload_wire_bytes,
                status: NodeStatus::Pending,
                bootstrapped: false,
                quotes_verified: 0,
                detected_at: None,
                stop: false,
            },
        );
    }

    /// Subscribes to revocation broadcasts.
    pub fn subscribe_revocations(&self) -> Receiver<RevocationEvent> {
        let (tx, rx) = channel();
        self.inner.borrow_mut().subscribers.push(tx);
        rx
    }

    /// Current status of a node.
    pub fn status(&self, node_id: &str) -> Option<NodeStatus> {
        self.inner
            .borrow()
            .nodes
            .get(node_id)
            .map(|n| n.status.clone())
    }

    /// When the verifier first detected a violation on the node.
    pub fn detected_at(&self, node_id: &str) -> Option<SimTime> {
        self.inner.borrow().nodes.get(node_id)?.detected_at
    }

    /// Quotes successfully verified for a node so far.
    pub fn quotes_verified(&self, node_id: &str) -> u64 {
        self.inner
            .borrow()
            .nodes
            .get(node_id)
            .map_or(0, |n| n.quotes_verified)
    }

    fn fresh_nonce(&self) -> [u8; 32] {
        let mut inner = self.inner.borrow_mut();
        inner.nonce_counter += 1;
        let d = bolted_crypto::sha256_concat(&[
            b"cv-nonce",
            &inner.nonce_counter.to_le_bytes(),
            &self.sim.now().as_nanos().to_le_bytes(),
        ]);
        *d.as_bytes()
    }

    /// Verifies evidence against the node's whitelists (pure check, no
    /// timing). Exposed for tests and custom tenant flows.
    pub fn verify_evidence(
        &self,
        node_id: &str,
        nonce: &[u8; 32],
        selection: &[usize],
        evidence: &AttestationEvidence,
    ) -> Result<(), String> {
        let inner = self.inner.borrow();
        let node = inner.nodes.get(node_id).ok_or("unknown node")?;
        // 1. The AIK must be certified by the registrar.
        let aik = self
            .registrar
            .certified_aik(node_id)
            .ok_or("AIK not certified by registrar")?;
        // 2. Signature and freshness.
        if !evidence.quote.verify(&aik) {
            return Err("quote signature invalid".into());
        }
        if &evidence.quote.nonce != nonce {
            return Err("stale nonce (replay?)".into());
        }
        if evidence.quote.selection != selection {
            return Err("quote covers wrong PCR selection".into());
        }
        // 3. The supplied logs must replay to the quoted PCR values.
        let boot_pcrs = evidence.boot_log.replay();
        let expected = PcrBank::composite_of(selection, |i| {
            if i == index::IMA {
                evidence.ima_log.replay_pcr()
            } else {
                boot_pcrs[i]
            }
        });
        if expected != evidence.quote.composite() {
            return Err("event log does not replay to quoted PCRs".into());
        }
        // 4. Every boot measurement must be whitelisted.
        for ev in evidence.boot_log.events() {
            if ev.pcr_index != index::IMA && !node.boot_whitelist.contains(&ev.digest) {
                return Err(format!("unapproved boot measurement: {}", ev.description));
            }
        }
        // 5. Every IMA entry must be whitelisted (continuous only).
        if selection.contains(&index::IMA) {
            if let Err(v) = node.ima_whitelist.check(&evidence.ima_log) {
                return Err(format!("IMA violation: {} ({})", v.path, v.digest));
            }
        }
        Ok(())
    }

    async fn broadcast_revocation(&self, node_id: &str, reason: &str) {
        let event = RevocationEvent {
            node_id: node_id.to_string(),
            reason: reason.to_string(),
            detected_at: self.sim.now(),
        };
        // One notification RTT to reach subscribers (sent in parallel).
        self.sim.sleep(self.config.rtt).await;
        let subs: Vec<Sender<RevocationEvent>> = self.inner.borrow().subscribers.to_vec();
        for tx in subs {
            tx.send(event.clone());
        }
    }

    /// Runs one attestation round against a node, charging quote,
    /// network and verification time. `continuous` selects the PCR set.
    pub async fn attest_once(&self, node_id: &str, continuous: bool) -> AttestOutcome {
        let (agent, selection) = {
            let inner = self.inner.borrow();
            let Some(node) = inner.nodes.get(node_id) else {
                return AttestOutcome::Failed("unknown node".into());
            };
            let sel = if continuous {
                self.config.continuous_selection.clone()
            } else {
                self.config.boot_selection.clone()
            };
            (node.agent.clone(), sel)
        };
        let nonce = self.fresh_nonce();
        self.sim.sleep(self.config.rtt).await;
        let evidence = match agent.attest(&self.sim, nonce, &selection).await {
            Ok(ev) => ev,
            Err(e) => {
                let reason = format!("agent error: {e}");
                self.fail_node(node_id, &reason);
                self.broadcast_revocation(node_id, &reason).await;
                return AttestOutcome::Failed(reason);
            }
        };
        self.sim.sleep(self.config.rtt).await;
        self.sim.sleep(self.config.verify_cost).await;
        match self.verify_evidence(node_id, &nonce, &selection, &evidence) {
            Ok(()) => {
                let deliver = {
                    let mut inner = self.inner.borrow_mut();
                    let node = inner.nodes.get_mut(node_id).expect("checked above");
                    node.status = NodeStatus::Trusted;
                    node.quotes_verified += 1;
                    if !node.bootstrapped && node.v_share.is_some() {
                        node.bootstrapped = true;
                        Some((
                            node.v_share.clone().expect("checked"),
                            node.sealed_payload.clone(),
                            node.payload_wire_bytes,
                        ))
                    } else {
                        None
                    }
                };
                if let Some((v, sealed, wire)) = deliver {
                    // Payload download (kernel + initrd dominate).
                    let approx = sealed.len() as u64 + wire;
                    let t = SimDuration::from_secs_f64(approx as f64 / self.config.payload_bps);
                    self.sim.sleep(t + self.config.rtt).await;
                    agent.deliver_v_and_payload(v, &sealed);
                }
                AttestOutcome::Trusted
            }
            Err(reason) => {
                self.fail_node(node_id, &reason);
                self.broadcast_revocation(node_id, &reason).await;
                AttestOutcome::Failed(reason)
            }
        }
    }

    fn fail_node(&self, node_id: &str, reason: &str) {
        let mut inner = self.inner.borrow_mut();
        if let Some(node) = inner.nodes.get_mut(node_id) {
            node.status = NodeStatus::Failed(reason.to_string());
            if node.detected_at.is_none() {
                node.detected_at = Some(self.sim.now());
            }
        }
    }

    /// Spawns the continuous-attestation loop for a node; it polls every
    /// `poll_interval` until the node fails or [`Verifier::stop`] is
    /// called. Returns the number of successful rounds.
    pub fn spawn_continuous(&self, node_id: &str) -> JoinHandle<u64> {
        let this = self.clone();
        let node_id = node_id.to_string();
        self.sim.spawn(async move {
            let mut rounds = 0u64;
            loop {
                this.sim.sleep(this.config.poll_interval).await;
                let stopped = {
                    let inner = this.inner.borrow();
                    inner.nodes.get(&node_id).is_none_or(|n| n.stop)
                };
                if stopped {
                    break;
                }
                match this.attest_once(&node_id, true).await {
                    AttestOutcome::Trusted => rounds += 1,
                    AttestOutcome::Failed(_) => break,
                }
            }
            rounds
        })
    }

    /// Stops a node's continuous-attestation loop.
    pub fn stop(&self, node_id: &str) {
        if let Some(n) = self.inner.borrow_mut().nodes.get_mut(node_id) {
            n.stop = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::agent_binary_digest;
    use crate::payload::{split_key, TenantPayload};
    use bolted_crypto::chacha20::Key;
    use bolted_crypto::prime::XorShiftSource;
    use bolted_firmware::{FirmwareKind, FirmwareSource, KernelImage, Machine};

    struct Rig {
        sim: Sim,
        machine: Machine,
        registrar: Registrar,
        verifier: Verifier,
        boot_whitelist: HashSet<Digest>,
    }

    fn rig() -> Rig {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let machine = Machine::new("node-1", fw.clone(), 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut boot_whitelist = HashSet::new();
        boot_whitelist.insert(fw.build_id);
        boot_whitelist.insert(agent_binary_digest());
        Rig {
            sim,
            machine,
            registrar,
            verifier,
            boot_whitelist,
        }
    }

    async fn boot_and_register(r: &Rig) -> Agent {
        r.machine.run_firmware(&r.sim).await.expect("boots");
        r.machine
            .measure_download("keylime-agent", agent_binary_digest())
            .expect("measures");
        let agent = Agent::start(&r.sim, "node-1", &r.machine).await;
        let mut rng = XorShiftSource::new(11);
        agent
            .register(&r.sim, &r.registrar, &mut rng)
            .await
            .expect("registers");
        agent
    }

    #[test]
    fn clean_boot_attests_trusted() {
        let r = rig();
        let outcome = r.sim.block_on({
            let (r2, v) = (r.machine.clone(), r.verifier.clone());
            let sim = r.sim.clone();
            let reg = r.registrar.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: r2,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        assert_eq!(outcome, AttestOutcome::Trusted);
        assert_eq!(r.verifier.status("node-1"), Some(NodeStatus::Trusted));
    }

    #[test]
    fn tampered_firmware_rejected() {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build();
        let evil_fw = fw.tampered(b"bootkit");
        let machine = Machine::new("node-1", evil_fw, 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut wl = HashSet::new();
        wl.insert(fw.build_id); // tenant approves only the clean build
        wl.insert(agent_binary_digest());
        let outcome = sim.block_on({
            let (sim2, m, reg, v) = (
                sim.clone(),
                machine.clone(),
                registrar.clone(),
                verifier.clone(),
            );
            async move {
                m.run_firmware(&sim2).await.expect("boots");
                m.measure_download("keylime-agent", agent_binary_digest())
                    .expect("measures");
                let agent = Agent::start(&sim2, "node-1", &m).await;
                let mut rng = XorShiftSource::new(11);
                agent
                    .register(&sim2, &reg, &mut rng)
                    .await
                    .expect("registers");
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        assert!(matches!(outcome, AttestOutcome::Failed(ref r) if r.contains("unapproved")));
        assert!(verifier.detected_at("node-1").is_some());
    }

    #[test]
    fn uncertified_aik_rejected() {
        let r = rig();
        let outcome = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                m.run_firmware(&sim).await.expect("boots");
                let agent = Agent::start(&sim, "node-1", &m).await;
                // Skip registration entirely.
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                v.attest_once("node-1", false).await
            }
        });
        assert!(matches!(outcome, AttestOutcome::Failed(ref e) if e.contains("not certified")));
    }

    #[test]
    fn successful_attestation_releases_payload() {
        let r = rig();
        let kernel = KernelImage::from_bytes("fedora", b"vmlinuz");
        let k = Key([4u8; 32]);
        let mut rng = XorShiftSource::new(2);
        let (u, v_share) = split_key(&k, &mut rng);
        let payload = TenantPayload {
            kernel_name: kernel.name.clone(),
            kernel_digest: kernel.digest,
            kernel_size: 1 << 20,
            cmdline: "quiet".into(),
            luks_passphrase: b"pw".to_vec(),
            ipsec_psk: b"psk".to_vec(),
            script: "kexec".into(),
        };
        let sealed = payload.seal(&k);
        let got = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                agent.deliver_u(u);
                v.add_node(
                    &agent,
                    wl,
                    ImaWhitelist::new(),
                    Some(v_share),
                    sealed,
                    1 << 20,
                );
                let outcome = v.attest_once("node-1", false).await;
                (outcome, agent.payload())
            }
        });
        assert_eq!(got.0, AttestOutcome::Trusted);
        let p = got.1.expect("payload delivered after attestation");
        assert_eq!(p.luks_passphrase, b"pw");
        assert_eq!(p.ipsec_psk, b"psk");
    }

    #[test]
    fn continuous_attestation_detects_ima_violation() {
        let r = rig();
        let (rounds, detected, revocation) = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                let mut ima_wl = ImaWhitelist::new();
                ima_wl.allow_content("/usr/bin/make", b"make");
                v.add_node(&agent, wl, ima_wl, None, Vec::new(), 0);
                let rx = v.subscribe_revocations();
                let handle = v.spawn_continuous("node-1");
                // Behave for a while, then run malware.
                let sim2 = sim.clone();
                let agent2 = agent.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_secs(10)).await;
                    agent2.ima_measure("/usr/bin/make", b"make"); // fine
                    sim2.sleep(SimDuration::from_secs(10)).await;
                    agent2.ima_measure("/tmp/cryptominer", b"evil"); // not fine
                });
                let rounds = handle.await;
                let detected = v.detected_at("node-1");
                let ev = rx.recv().await;
                (rounds, detected, ev)
            }
        });
        assert!(rounds >= 3, "some clean rounds first, got {rounds}");
        let detected = detected.expect("violation detected");
        // Malware ran at t=20s (plus boot time offset); detection within
        // one poll interval + verification time of the *next* quote.
        let ev = revocation.expect("revocation broadcast");
        assert_eq!(ev.node_id, "node-1");
        assert!(ev.reason.contains("cryptominer"));
        assert_eq!(ev.detected_at, detected);
    }

    #[test]
    fn stopped_loop_ends_cleanly() {
        let r = rig();
        let rounds = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                let handle = v.spawn_continuous("node-1");
                let sim2 = sim.clone();
                let v2 = v.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_secs(9)).await;
                    v2.stop("node-1");
                });
                handle.await
            }
        });
        assert!(rounds >= 1);
        assert_eq!(r.verifier.status("node-1"), Some(NodeStatus::Trusted));
    }

    #[test]
    fn replayed_quote_rejected() {
        let r = rig();
        let err = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                v.add_node(&agent, wl, ImaWhitelist::new(), None, Vec::new(), 0);
                // Capture evidence for an old nonce, then present it
                // against a new nonce.
                let sel = v.config().boot_selection.clone();
                let old = agent.attest(&sim, [1; 32], &sel).await.expect("attests");
                v.verify_evidence("node-1", &[2; 32], &sel, &old)
                    .unwrap_err()
            }
        });
        assert!(err.contains("stale nonce"), "got: {err}");
    }

    #[test]
    fn forged_ima_log_rejected() {
        // An attacker who strips entries from the IMA list cannot match
        // the quoted PCR 10.
        let r = rig();
        let err = r.sim.block_on({
            let sim = r.sim.clone();
            let m = r.machine.clone();
            let reg = r.registrar.clone();
            let v = r.verifier.clone();
            let wl = r.boot_whitelist.clone();
            async move {
                let rig_ref = Rig {
                    sim: sim.clone(),
                    machine: m,
                    registrar: reg,
                    verifier: v.clone(),
                    boot_whitelist: wl.clone(),
                };
                let agent = boot_and_register(&rig_ref).await;
                let mut ima_wl = ImaWhitelist::new();
                ima_wl.allow_content("/usr/bin/ls", b"ls");
                v.add_node(&agent, wl, ima_wl, None, Vec::new(), 0);
                agent.ima_measure("/usr/bin/ls", b"ls");
                agent.ima_measure("/tmp/evil", b"malware");
                let sel = v.config().continuous_selection.clone();
                let nonce = [3u8; 32];
                let mut ev = agent.attest(&sim, nonce, &sel).await.expect("attests");
                // Strip the incriminating entry.
                let mut clean = crate::ima::ImaLog::new();
                let mut scratch = bolted_tpm::Tpm::new(99, 512);
                clean.measure(&mut scratch, "/usr/bin/ls", b"ls");
                ev.ima_log = clean;
                v.verify_evidence("node-1", &nonce, &sel, &ev).unwrap_err()
            }
        });
        assert!(err.contains("does not replay"), "got: {err}");
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;
    use crate::agent::{agent_binary_digest, Agent};
    use crate::payload::{split_key, TenantPayload};
    use bolted_crypto::chacha20::Key;
    use bolted_crypto::prime::XorShiftSource;
    use bolted_crypto::sha256::sha256;
    use bolted_firmware::{FirmwareKind, FirmwareSource, Machine};

    /// The V share and payload must be released exactly once, even across
    /// repeated successful attestations (re-delivery would let a later
    /// compromise re-fetch keys).
    #[test]
    fn payload_delivered_exactly_once() {
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "v", b"src").build();
        let machine = Machine::new("node-1", fw.clone(), 7, 512, 64);
        machine.power_on();
        let registrar = Registrar::new();
        let verifier = Verifier::new(&sim, &registrar, VerifierConfig::default());
        let mut wl = HashSet::new();
        wl.insert(fw.build_id);
        wl.insert(agent_binary_digest());
        let outcomes = sim.block_on({
            let (sim2, m, reg, v) = (
                sim.clone(),
                machine.clone(),
                registrar.clone(),
                verifier.clone(),
            );
            async move {
                m.run_firmware(&sim2).await.expect("boots");
                m.measure_download("keylime-agent", agent_binary_digest())
                    .expect("measures");
                let agent = Agent::start(&sim2, "node-1", &m).await;
                let mut rng = XorShiftSource::new(11);
                agent
                    .register(&sim2, &reg, &mut rng)
                    .await
                    .expect("registers");
                let k = Key([9u8; 32]);
                let (u, v_share) = split_key(&k, &mut rng);
                let payload = TenantPayload {
                    kernel_name: "k".into(),
                    kernel_digest: sha256(b"k"),
                    kernel_size: 1,
                    cmdline: String::new(),
                    luks_passphrase: b"pw".to_vec(),
                    ipsec_psk: Vec::new(),
                    script: String::new(),
                };
                agent.deliver_u(u);
                v.add_node(
                    &agent,
                    wl,
                    ImaWhitelist::new(),
                    Some(v_share),
                    payload.seal(&k),
                    0,
                );
                let first = v.attest_once("node-1", false).await;
                let t_first = sim2.now();
                let second = v.attest_once("node-1", false).await;
                let t_second_elapsed = sim2.now().since(t_first);
                (first, second, t_second_elapsed, agent.payload().is_some())
            }
        });
        assert_eq!(outcomes.0, AttestOutcome::Trusted);
        assert_eq!(outcomes.1, AttestOutcome::Trusted);
        assert!(outcomes.3, "payload delivered on the first pass");
        // Second round must not re-pay the payload delivery time: it is
        // just quote + rtt + verify (well under 2 seconds).
        assert!(
            outcomes.2.as_secs_f64() < 2.0,
            "second attestation re-delivered the payload: {}",
            outcomes.2
        );
        assert_eq!(verifier.quotes_verified("node-1"), 2);
    }
}
