//! `bolted-firmware` — machine and firmware models.
//!
//! Provides the physical-server substrate for Bolted: SPI flash holding
//! UEFI or LinuxBoot images (deterministically built, per §5), POST with
//! paper-calibrated timings, the measured boot chain into the TPM, RAM
//! residue semantics (who scrubs, who doesn't), and kexec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootchain;
pub mod image;
pub mod machine;

pub use bootchain::{classify_chain, BootFlow, ChainError};
pub use image::{FirmwareImage, FirmwareKind, FirmwareSource, KernelImage};
pub use machine::{Machine, MachineError, PowerState, RamResidue};
