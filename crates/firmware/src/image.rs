//! Firmware images and deterministic builds.
//!
//! LinuxBoot's key security property is that it is *reproducibly built*:
//! a tenant can compile the published source and compare the resulting
//! measurement with what the server's TPM quotes (§5). We model a build
//! as a pure function of (kind, version, source), so "same source ⇒ same
//! build id" holds by construction and any tampering shows up as a
//! different measurement.

use bolted_crypto::sha256::{sha256_concat, Digest};
use bolted_sim::SimDuration;

/// Which firmware family a flash image belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FirmwareKind {
    /// Vendor UEFI: closed source, slow POST (the paper measured ~4 min).
    Uefi,
    /// LinuxBoot/Heads: open source, deterministic, fast POST (~40 s),
    /// scrubs memory before handing off.
    LinuxBoot,
}

impl FirmwareKind {
    /// POST duration measured in the paper (§5: LinuxBoot "is
    /// significantly faster to POST than UEFI; taking 40 seconds on our
    /// servers, compared to about 4 minutes with UEFI").
    pub fn post_time(self) -> SimDuration {
        match self {
            FirmwareKind::Uefi => SimDuration::from_secs(240),
            FirmwareKind::LinuxBoot => SimDuration::from_secs(40),
        }
    }

    /// Whether this firmware scrubs RAM before launching an OS.
    pub fn scrubs_memory(self) -> bool {
        matches!(self, FirmwareKind::LinuxBoot)
    }
}

/// The source tree a firmware image is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareSource {
    /// Firmware family.
    pub kind: FirmwareKind,
    /// Human-readable version.
    pub version: String,
    /// Digest of the source tree (what a tenant audits).
    pub source_digest: Digest,
}

impl FirmwareSource {
    /// A source tree built from raw content bytes.
    pub fn from_tree(kind: FirmwareKind, version: &str, tree: &[u8]) -> Self {
        FirmwareSource {
            kind,
            version: version.to_string(),
            source_digest: bolted_crypto::sha256(tree),
        }
    }

    /// Deterministically builds the source into a flashable image.
    pub fn build(&self) -> FirmwareImage {
        let kind_tag: &[u8] = match self.kind {
            FirmwareKind::Uefi => b"uefi",
            FirmwareKind::LinuxBoot => b"linuxboot",
        };
        let build_id = sha256_concat(&[
            b"fw-build-v1|",
            kind_tag,
            b"|",
            self.version.as_bytes(),
            b"|",
            self.source_digest.as_bytes(),
        ]);
        FirmwareImage {
            kind: self.kind,
            version: self.version.clone(),
            build_id,
            post_time: self.kind.post_time(),
        }
    }
}

/// A built firmware image, as resident in SPI flash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// Firmware family.
    pub kind: FirmwareKind,
    /// Version string.
    pub version: String,
    /// The measurement that lands in PCR 0 when this image runs.
    pub build_id: Digest,
    /// POST duration for this image.
    pub post_time: SimDuration,
}

impl FirmwareImage {
    /// Returns a maliciously modified copy — same claimed version, but
    /// the executed bytes (and thus the measurement) differ. This is the
    /// "previous tenant infected the firmware" attack from §2.
    pub fn tampered(&self, implant: &[u8]) -> FirmwareImage {
        FirmwareImage {
            build_id: sha256_concat(&[b"implant|", self.build_id.as_bytes(), implant]),
            ..self.clone()
        }
    }
}

/// A bootable kernel + initrd the firmware can kexec into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelImage {
    /// Description, e.g. `"fedora28-4.17.9"`.
    pub name: String,
    /// Measurement of kernel + initrd + command line.
    pub digest: Digest,
    /// Size in bytes (drives download timing).
    pub size_bytes: u64,
}

impl KernelImage {
    /// Builds a kernel image record from content bytes.
    pub fn from_bytes(name: &str, content: &[u8]) -> Self {
        KernelImage {
            name: name.to_string(),
            digest: bolted_crypto::sha256(content),
            size_bytes: content.len() as u64,
        }
    }

    /// Builds a kernel image record from a known digest and size
    /// (when the content itself is not materialised).
    pub fn from_digest(name: &str, digest: Digest, size_bytes: u64) -> Self {
        KernelImage {
            name: name.to_string(),
            digest,
            size_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linuxboot_src() -> FirmwareSource {
        FirmwareSource::from_tree(
            FirmwareKind::LinuxBoot,
            "heads-1.0",
            b"linuxboot source tree",
        )
    }

    #[test]
    fn build_is_deterministic() {
        let a = linuxboot_src().build();
        let b = linuxboot_src().build();
        assert_eq!(a, b, "same source must produce identical images");
    }

    #[test]
    fn different_source_different_build() {
        let a = linuxboot_src().build();
        let b = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"patched tree")
            .build();
        assert_ne!(a.build_id, b.build_id);
    }

    #[test]
    fn different_version_different_build() {
        let a = linuxboot_src().build();
        let b = FirmwareSource {
            version: "heads-1.1".into(),
            ..linuxboot_src()
        }
        .build();
        assert_ne!(a.build_id, b.build_id);
    }

    #[test]
    fn post_times_match_paper() {
        assert_eq!(FirmwareKind::Uefi.post_time(), SimDuration::from_secs(240));
        assert_eq!(
            FirmwareKind::LinuxBoot.post_time(),
            SimDuration::from_secs(40)
        );
    }

    #[test]
    fn only_linuxboot_scrubs() {
        assert!(FirmwareKind::LinuxBoot.scrubs_memory());
        assert!(!FirmwareKind::Uefi.scrubs_memory());
    }

    #[test]
    fn tampering_changes_measurement_only() {
        let good = linuxboot_src().build();
        let evil = good.tampered(b"bootkit");
        assert_eq!(evil.version, good.version, "attacker lies about version");
        assert_eq!(evil.kind, good.kind);
        assert_ne!(evil.build_id, good.build_id, "but the TPM sees through it");
    }

    #[test]
    fn kernel_image_digest_tracks_content() {
        let a = KernelImage::from_bytes("k", b"vmlinuz bytes");
        let b = KernelImage::from_bytes("k", b"vmlinuz bytes!");
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.size_bytes, 13);
    }
}
