//! The physical machine model: power, SPI flash, RAM residue, TPM, and
//! the measured boot sequence.
//!
//! The security-critical behaviours modelled here, all load-bearing for
//! the paper's threat analysis (§6):
//!
//! * PCRs reset **only** on power cycle; firmware is measured into PCR 0
//!   before anything else runs, so whatever is in flash leaves its
//!   fingerprint.
//! * RAM contents survive power cycles (until scrubbed) — a tenant's
//!   secrets are visible to the next occupant *unless* the attested
//!   firmware scrubs, which LinuxBoot does and UEFI does not.
//! * kexec measures the target kernel before jumping into it, keeping
//!   the chain of trust unbroken (SRTM).

use bolted_crypto::sha256::{sha256, Digest};
use bolted_sim::lock;
use bolted_sim::{Sim, SimDuration};
use bolted_tpm::{index, Tpm};
use std::sync::{Arc, Mutex};

use crate::image::{FirmwareImage, FirmwareKind, KernelImage};

/// Machine power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Powered off.
    Off,
    /// Powered on.
    On,
}

/// Errors from machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Operation requires power in the other state.
    WrongPowerState,
    /// No firmware has run since power-on (boot sequencing bug).
    FirmwareNotRun,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::WrongPowerState => write!(f, "machine in wrong power state"),
            MachineError::FirmwareNotRun => write!(f, "firmware has not run"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Residual data left in RAM by an occupant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RamResidue {
    /// Which tenant's data it is.
    pub tenant: String,
    /// A sample of the secret material.
    pub secret: Vec<u8>,
}

struct MachineInner {
    name: String,
    power: PowerState,
    flash: FirmwareImage,
    tpm: Tpm,
    /// RAM residue from the current/previous occupant; `None` = scrubbed.
    ram_residue: Option<RamResidue>,
    /// True once firmware has run since the last power-on.
    firmware_ran: bool,
    booted_kernel: Option<KernelImage>,
    console: Vec<String>,
    ram_gib: u64,
}

/// A simulated physical server. Clonable handle with shared state, so it
/// can be held simultaneously by HIL (as a BMC), the provisioning flow,
/// and the Keylime agent — just like a real machine.
#[derive(Clone)]
pub struct Machine {
    inner: Arc<Mutex<MachineInner>>,
}

impl Machine {
    /// Builds a machine with the given flash contents and a TPM seeded
    /// deterministically from `tpm_seed`.
    pub fn new(
        name: impl Into<String>,
        flash: FirmwareImage,
        tpm_seed: u64,
        tpm_key_bits: usize,
        ram_gib: u64,
    ) -> Self {
        Machine {
            inner: Arc::new(Mutex::new(MachineInner {
                name: name.into(),
                power: PowerState::Off,
                flash,
                tpm: Tpm::new(tpm_seed, tpm_key_bits),
                ram_residue: None,
                firmware_ran: false,
                booted_kernel: None,
                console: Vec::new(),
                ram_gib,
            })),
        }
    }

    /// Machine name.
    pub fn name(&self) -> String {
        lock(&self.inner).name.clone()
    }

    /// Current power state.
    pub fn power(&self) -> PowerState {
        lock(&self.inner).power
    }

    /// RAM size in GiB (drives scrub timing).
    pub fn ram_gib(&self) -> u64 {
        lock(&self.inner).ram_gib
    }

    /// Access the TPM with a closure (shared-handle-safe).
    pub fn with_tpm<R>(&self, f: impl FnOnce(&mut Tpm) -> R) -> R {
        f(&mut lock(&self.inner).tpm)
    }

    /// Appends a console line (visible through HIL's console API).
    pub fn console_log(&self, line: impl Into<String>) {
        lock(&self.inner).console.push(line.into());
    }

    /// Full console transcript.
    pub fn console(&self) -> Vec<String> {
        lock(&self.inner).console.clone()
    }

    // -- power ------------------------------------------------------------

    /// Powers on (does not run firmware; call [`Machine::run_firmware`]).
    pub fn power_on(&self) {
        let mut inner = lock(&self.inner);
        if inner.power == PowerState::Off {
            inner.power = PowerState::On;
            inner.firmware_ran = false;
            inner.booted_kernel = None;
            // A power cycle resets the TPM's platform state.
            inner.tpm.platform_reset();
        }
    }

    /// Hard power-off. RAM residue is preserved: DRAM retains data long
    /// enough for cold-boot attacks, and the threat model charges the
    /// *firmware*, not the power supply, with scrubbing.
    pub fn power_off(&self) {
        let mut inner = lock(&self.inner);
        inner.power = PowerState::Off;
        inner.booted_kernel = None;
    }

    /// Power cycle (off + on).
    pub fn power_cycle(&self) {
        self.power_off();
        self.power_on();
    }

    // -- flash ------------------------------------------------------------

    /// The image currently in SPI flash.
    pub fn flash(&self) -> FirmwareImage {
        lock(&self.inner).flash.clone()
    }

    /// Reflashes the firmware (provider maintenance — or an attack if the
    /// image is tampered; either way the next boot's measurement changes).
    pub fn reflash(&self, image: FirmwareImage) {
        lock(&self.inner).flash = image;
    }

    // -- the measured boot sequence ----------------------------------------

    /// Runs POST + firmware: charges POST time, measures the flash image
    /// into PCR 0, and (LinuxBoot only) scrubs RAM.
    ///
    /// Returns the firmware kind that ran.
    pub async fn run_firmware(&self, sim: &Sim) -> Result<FirmwareKind, MachineError> {
        let (post_time, kind, build_id, scrub_time) = {
            let inner = lock(&self.inner);
            if inner.power != PowerState::On {
                return Err(MachineError::WrongPowerState);
            }
            let scrub = if inner.flash.kind.scrubs_memory() {
                // Scrubbing overlaps POST hardware init in Heads; charge a
                // modest serial cost proportional to RAM (~25 GiB/s zeroing).
                SimDuration::from_secs_f64(inner.ram_gib as f64 / 25.0)
            } else {
                SimDuration::ZERO
            };
            (
                inner.flash.post_time,
                inner.flash.kind,
                inner.flash.build_id,
                scrub,
            )
        };
        sim.sleep(post_time).await;
        {
            let mut inner = lock(&self.inner);
            inner
                .tpm
                .extend_measured(index::FIRMWARE, build_id, format!("firmware:{kind:?}"));
            inner.firmware_ran = true;
        }
        if kind.scrubs_memory() {
            sim.sleep(scrub_time).await;
            self.scrub_memory();
        }
        self.console_log(format!("POST complete ({kind:?})"));
        Ok(kind)
    }

    /// Measures a downloaded artifact (iPXE payload, Heads runtime,
    /// Keylime agent, ...) into the boot-code PCR. The paper modified
    /// iPXE to do exactly this (§5).
    pub fn measure_download(&self, name: &str, digest: Digest) -> Result<(), MachineError> {
        let mut inner = lock(&self.inner);
        if !inner.firmware_ran {
            return Err(MachineError::FirmwareNotRun);
        }
        inner
            .tpm
            .extend_measured(index::BOOT_CODE, digest, format!("download:{name}"));
        Ok(())
    }

    /// kexec: measure the kernel into the boot-config PCR, then jump into
    /// it. The running occupant's RAM is replaced by the new OS — which
    /// immediately taints RAM with the new occupant's state.
    pub fn kexec(&self, kernel: KernelImage, tenant: &str) -> Result<(), MachineError> {
        let mut inner = lock(&self.inner);
        if !inner.firmware_ran {
            return Err(MachineError::FirmwareNotRun);
        }
        inner.tpm.extend_measured(
            index::BOOT_CONFIG,
            kernel.digest,
            format!("kexec:{}", kernel.name),
        );
        inner.booted_kernel = Some(kernel);
        inner.ram_residue = Some(RamResidue {
            tenant: tenant.to_string(),
            secret: Vec::new(),
        });
        Ok(())
    }

    /// The kernel currently running, if any.
    pub fn booted_kernel(&self) -> Option<KernelImage> {
        lock(&self.inner).booted_kernel.clone()
    }

    // -- RAM residue ---------------------------------------------------------

    /// The running tenant writes secret material into RAM.
    pub fn write_secret_to_ram(&self, tenant: &str, secret: &[u8]) {
        let mut inner = lock(&self.inner);
        inner.ram_residue = Some(RamResidue {
            tenant: tenant.to_string(),
            secret: secret.to_vec(),
        });
    }

    /// What a new occupant could recover from RAM (cold-boot style). The
    /// central after-occupancy threat: `Some(..)` means the previous
    /// tenant's data is exposed.
    pub fn ram_residue(&self) -> Option<RamResidue> {
        lock(&self.inner).ram_residue.clone()
    }

    /// Zeroes RAM (LinuxBoot does this during boot; callable directly for
    /// tests and revocation responses).
    pub fn scrub_memory(&self) {
        lock(&self.inner).ram_residue = None;
    }

    /// Digest identifying this machine for logs.
    pub fn identity_digest(&self) -> Digest {
        sha256(lock(&self.inner).name.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FirmwareSource;
    use bolted_tpm::NUM_PCRS;

    fn linuxboot() -> FirmwareImage {
        FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "heads-1.0", b"src").build()
    }

    fn uefi() -> FirmwareImage {
        FirmwareSource::from_tree(FirmwareKind::Uefi, "2.7", b"vendor blob").build()
    }

    fn machine(img: FirmwareImage) -> Machine {
        Machine::new("m620-01", img, 1, 512, 64)
    }

    #[test]
    fn firmware_requires_power() {
        let sim = Sim::new();
        let m = machine(linuxboot());
        let r = sim.block_on({
            let m = m.clone();
            let sim = sim.clone();
            async move { m.run_firmware(&sim).await }
        });
        assert_eq!(r, Err(MachineError::WrongPowerState));
    }

    #[test]
    fn post_charges_firmware_specific_time() {
        for (img, expect_min, expect_max) in [(linuxboot(), 40.0, 45.0), (uefi(), 240.0, 241.0)] {
            let sim = Sim::new();
            let m = machine(img);
            m.power_on();
            sim.block_on({
                let (m, sim2) = (m.clone(), sim.clone());
                async move {
                    m.run_firmware(&sim2).await.expect("boots");
                }
            });
            let t = sim.now().as_secs_f64();
            assert!(
                (expect_min..expect_max).contains(&t),
                "POST took {t}s, expected [{expect_min},{expect_max})"
            );
        }
    }

    #[test]
    fn firmware_measured_into_pcr0() {
        let sim = Sim::new();
        let m = machine(linuxboot());
        m.power_on();
        sim.block_on({
            let (m, sim2) = (m.clone(), sim.clone());
            async move {
                m.run_firmware(&sim2).await.expect("boots");
            }
        });
        let pcr0 = m.with_tpm(|t| t.pcr_read(index::FIRMWARE));
        assert_ne!(pcr0, Digest::ZERO);
        // A machine with tampered flash measures differently.
        let sim2 = Sim::new();
        let evil = machine(linuxboot().tampered(b"bootkit"));
        evil.power_on();
        sim2.block_on({
            let (m, sim3) = (evil.clone(), sim2.clone());
            async move {
                m.run_firmware(&sim3).await.expect("boots");
            }
        });
        let evil_pcr0 = evil.with_tpm(|t| t.pcr_read(index::FIRMWARE));
        assert_ne!(evil_pcr0, pcr0, "tampered firmware is visible in PCR 0");
    }

    #[test]
    fn power_cycle_resets_pcrs_but_not_ram() {
        let sim = Sim::new();
        let m = machine(uefi());
        m.power_on();
        sim.block_on({
            let (m, sim2) = (m.clone(), sim.clone());
            async move {
                m.run_firmware(&sim2).await.expect("boots");
            }
        });
        m.write_secret_to_ram("tenant-a", b"disk encryption key");
        m.power_cycle();
        // PCRs are reset...
        for i in 0..NUM_PCRS {
            assert_eq!(m.with_tpm(|t| t.pcr_read(i)), Digest::ZERO);
        }
        // ...but RAM residue survives the cycle (UEFI does not scrub).
        let residue = m.ram_residue().expect("UEFI leaves RAM intact");
        assert_eq!(residue.tenant, "tenant-a");
        assert_eq!(residue.secret, b"disk encryption key");
    }

    #[test]
    fn linuxboot_scrubs_on_boot_uefi_does_not() {
        for (img, expect_scrubbed) in [(linuxboot(), true), (uefi(), false)] {
            let sim = Sim::new();
            let m = machine(img);
            m.power_on();
            sim.block_on({
                let (m, sim2) = (m.clone(), sim.clone());
                async move {
                    m.run_firmware(&sim2).await.expect("boots");
                }
            });
            m.write_secret_to_ram("tenant-a", b"secret");
            m.power_cycle();
            sim.block_on({
                let (m, sim2) = (m.clone(), sim.clone());
                async move {
                    m.run_firmware(&sim2).await.expect("boots");
                }
            });
            assert_eq!(
                m.ram_residue().is_none(),
                expect_scrubbed,
                "scrub behaviour for {:?}",
                m.flash().kind
            );
        }
    }

    #[test]
    fn downloads_and_kexec_are_measured() {
        let sim = Sim::new();
        let m = machine(linuxboot());
        m.power_on();
        sim.block_on({
            let (m, sim2) = (m.clone(), sim.clone());
            async move {
                m.run_firmware(&sim2).await.expect("boots");
            }
        });
        let pcr4_before = m.with_tpm(|t| t.pcr_read(index::BOOT_CODE));
        m.measure_download("keylime-agent", sha256(b"agent binary"))
            .expect("measures");
        assert_ne!(m.with_tpm(|t| t.pcr_read(index::BOOT_CODE)), pcr4_before);
        let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz+initrd");
        m.kexec(kernel.clone(), "charlie").expect("kexecs");
        assert_eq!(m.booted_kernel(), Some(kernel));
        assert_ne!(m.with_tpm(|t| t.pcr_read(index::BOOT_CONFIG)), Digest::ZERO);
    }

    #[test]
    fn kexec_before_firmware_rejected() {
        let m = machine(linuxboot());
        m.power_on();
        let kernel = KernelImage::from_bytes("k", b"bytes");
        assert_eq!(
            m.kexec(kernel, "t"),
            Err(MachineError::FirmwareNotRun),
            "cannot skip the measured chain"
        );
        assert_eq!(
            m.measure_download("x", Digest::ZERO),
            Err(MachineError::FirmwareNotRun)
        );
    }

    #[test]
    fn reflash_changes_next_boot_measurement() {
        let sim = Sim::new();
        let m = machine(linuxboot());
        m.power_on();
        sim.block_on({
            let (m, sim2) = (m.clone(), sim.clone());
            async move {
                m.run_firmware(&sim2).await.expect("boots");
            }
        });
        let good = m.with_tpm(|t| t.pcr_read(index::FIRMWARE));
        m.reflash(m.flash().tampered(b"persistent implant"));
        m.power_cycle();
        sim.block_on({
            let (m, sim2) = (m.clone(), sim.clone());
            async move {
                m.run_firmware(&sim2).await.expect("boots");
            }
        });
        assert_ne!(m.with_tpm(|t| t.pcr_read(index::FIRMWARE)), good);
    }

    #[test]
    fn console_collects_lines() {
        let m = machine(linuxboot());
        m.console_log("hello");
        m.console_log("world");
        assert_eq!(m.console(), vec!["hello".to_string(), "world".to_string()]);
    }
}
