//! Boot-chain verification helpers: given a machine's event log, decide
//! which canonical boot flow it followed and whether the chain is intact.
//!
//! These are convenience views used by examples and tests; the
//! authoritative check is always the verifier's replay against a
//! whitelist. They encode the two flows of §5's "Putting it together":
//!
//! * **Flash flow** (LinuxBoot in SPI): firmware → agent → kexec.
//! * **Chain-load flow** (vendor UEFI): firmware → iPXE → Heads runtime →
//!   agent → kexec.

use bolted_tpm::{index, EventLog};

/// Which boot flow an event log describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootFlow {
    /// LinuxBoot executed straight from flash.
    FlashLinuxBoot,
    /// Vendor firmware chain-loading a downloaded LinuxBoot runtime.
    ChainLoaded,
}

/// Structural problems found in a boot chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// No firmware measurement at all (PCR 0 untouched).
    NoFirmwareMeasurement,
    /// Boot code (PCR 4) was extended before firmware (PCR 0) —
    /// impossible in a correct SRTM chain.
    OutOfOrder,
    /// A kexec happened with no boot-code measurements before it in the
    /// chain-loaded flow.
    KexecWithoutAgent,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::NoFirmwareMeasurement => write!(f, "no firmware measurement in log"),
            ChainError::OutOfOrder => write!(f, "boot code measured before firmware"),
            ChainError::KexecWithoutAgent => write!(f, "kexec without prior boot-code stage"),
        }
    }
}

/// Classifies and structurally validates a boot event log.
///
/// Returns the flow the log describes. This checks *ordering* only —
/// whether each measured value is trusted is the whitelist's job.
pub fn classify_chain(log: &EventLog) -> Result<BootFlow, ChainError> {
    let events = log.events();
    let first_fw = events.iter().position(|e| e.pcr_index == index::FIRMWARE);
    let first_boot = events.iter().position(|e| e.pcr_index == index::BOOT_CODE);
    let first_kexec = events
        .iter()
        .position(|e| e.pcr_index == index::BOOT_CONFIG);
    let Some(fw_pos) = first_fw else {
        return Err(ChainError::NoFirmwareMeasurement);
    };
    if let Some(boot_pos) = first_boot {
        if boot_pos < fw_pos {
            return Err(ChainError::OutOfOrder);
        }
    }
    if let Some(kexec_pos) = first_kexec {
        if first_boot.is_none_or(|b| b > kexec_pos) {
            return Err(ChainError::KexecWithoutAgent);
        }
    }
    let heads_downloaded = events
        .iter()
        .any(|e| e.pcr_index == index::BOOT_CODE && e.description.contains("heads"));
    Ok(if heads_downloaded {
        BootFlow::ChainLoaded
    } else {
        BootFlow::FlashLinuxBoot
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolted_crypto::sha256::sha256;

    fn ev(log: &mut EventLog, pcr: usize, what: &str) {
        log.append(pcr, sha256(what.as_bytes()), what);
    }

    #[test]
    fn flash_flow_classified() {
        let mut log = EventLog::new();
        ev(&mut log, index::FIRMWARE, "firmware:LinuxBoot");
        ev(&mut log, index::BOOT_CODE, "download:keylime-agent");
        ev(&mut log, index::BOOT_CONFIG, "kexec:fedora");
        assert_eq!(classify_chain(&log), Ok(BootFlow::FlashLinuxBoot));
    }

    #[test]
    fn chain_loaded_flow_classified() {
        let mut log = EventLog::new();
        ev(&mut log, index::FIRMWARE, "firmware:Uefi");
        ev(&mut log, index::BOOT_CODE, "download:ipxe");
        ev(&mut log, index::BOOT_CODE, "download:heads-runtime");
        ev(&mut log, index::BOOT_CODE, "download:keylime-agent");
        ev(&mut log, index::BOOT_CONFIG, "kexec:fedora");
        assert_eq!(classify_chain(&log), Ok(BootFlow::ChainLoaded));
    }

    #[test]
    fn missing_firmware_rejected() {
        let mut log = EventLog::new();
        ev(&mut log, index::BOOT_CODE, "download:agent");
        assert_eq!(classify_chain(&log), Err(ChainError::NoFirmwareMeasurement));
        assert_eq!(
            classify_chain(&EventLog::new()),
            Err(ChainError::NoFirmwareMeasurement)
        );
    }

    #[test]
    fn out_of_order_chain_rejected() {
        let mut log = EventLog::new();
        ev(&mut log, index::BOOT_CODE, "download:agent");
        ev(&mut log, index::FIRMWARE, "firmware:LinuxBoot");
        assert_eq!(classify_chain(&log), Err(ChainError::OutOfOrder));
    }

    #[test]
    fn kexec_without_agent_rejected() {
        let mut log = EventLog::new();
        ev(&mut log, index::FIRMWARE, "firmware:LinuxBoot");
        ev(&mut log, index::BOOT_CONFIG, "kexec:mystery-kernel");
        assert_eq!(classify_chain(&log), Err(ChainError::KexecWithoutAgent));
    }

    #[test]
    fn real_machine_boot_produces_valid_flash_chain() {
        use crate::image::{FirmwareKind, FirmwareSource, KernelImage};
        use crate::machine::Machine;
        use bolted_sim::Sim;
        let sim = Sim::new();
        let fw = FirmwareSource::from_tree(FirmwareKind::LinuxBoot, "v1", b"src").build();
        let m = Machine::new("n", fw, 1, 512, 64);
        m.power_on();
        sim.block_on({
            let (m, sim2) = (m.clone(), sim.clone());
            async move {
                m.run_firmware(&sim2).await.expect("boots");
            }
        });
        m.measure_download("keylime-agent", sha256(b"agent"))
            .expect("measures");
        m.kexec(KernelImage::from_bytes("k", b"bytes"), "tenant")
            .expect("kexecs");
        let log = m.with_tpm(|t| t.event_log().clone());
        assert_eq!(classify_chain(&log), Ok(BootFlow::FlashLinuxBoot));
    }
}
