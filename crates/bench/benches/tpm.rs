//! Criterion benchmarks for the TPM and attestation hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bolted_crypto::prime::XorShiftSource;
use bolted_crypto::sha256::sha256;
use bolted_tpm::{make_credential, Tpm};

fn bench_pcr_extend(c: &mut Criterion) {
    let mut tpm = Tpm::new(1, 512);
    let d = sha256(b"measurement");
    c.bench_function("tpm/extend_measured", |b| {
        b.iter(|| tpm.extend_measured(4, black_box(d), "bench"))
    });
}

fn bench_quote(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpm");
    g.sample_size(20);
    let mut tpm = Tpm::new(1, 512);
    let aik = tpm.create_aik();
    tpm.extend_measured(0, sha256(b"fw"), "fw");
    tpm.extend_measured(4, sha256(b"agent"), "agent");
    g.bench_function("quote_sign", |b| {
        b.iter(|| tpm.quote(black_box(&[0, 4, 5]), [7; 32]).expect("quotes"))
    });
    let quote = tpm.quote(&[0, 4, 5], [7; 32]).expect("quotes");
    g.bench_function("quote_verify", |b| b.iter(|| quote.verify(black_box(&aik))));
    g.finish();
}

fn bench_event_log_replay(c: &mut Criterion) {
    let mut tpm = Tpm::new(1, 512);
    for i in 0..256 {
        tpm.extend_measured(10, sha256(format!("file-{i}").as_bytes()), "ima");
    }
    let log = tpm.event_log().clone();
    c.bench_function("tpm/event_log_replay_256", |b| {
        b.iter(|| black_box(&log).replay_composite(&[10]))
    });
}

fn bench_credential_activation(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpm");
    g.sample_size(20);
    let mut tpm = Tpm::new(1, 512);
    let aik = tpm.create_aik();
    let mut rng = XorShiftSource::new(9);
    g.bench_function("make_credential", |b| {
        b.iter(|| make_credential(tpm.ek_pub(), &aik.fingerprint(), b"secret", &mut rng))
    });
    let blob = make_credential(tpm.ek_pub(), &aik.fingerprint(), b"secret", &mut rng);
    g.bench_function("activate_credential", |b| {
        b.iter(|| {
            tpm.activate_credential(black_box(&blob))
                .expect("activates")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pcr_extend,
    bench_quote,
    bench_event_log_replay,
    bench_credential_activation
);
criterion_main!(benches);
