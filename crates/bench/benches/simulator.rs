//! Criterion benchmarks for the simulation engine itself: how much wall
//! time the virtual-time executor, resources, and full end-to-end
//! provisioning runs cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bolted_core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted_firmware::KernelImage;
use bolted_sim::{Resource, Sim, SimDuration};

fn bench_executor(c: &mut Criterion) {
    c.bench_function("sim/spawn_sleep_10k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..10_000u64 {
                let sim2 = sim.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_nanos(i % 977 + 1)).await;
                });
            }
            assert_eq!(sim.run(), 0);
            black_box(sim.events_processed())
        })
    });
}

fn bench_resource_contention(c: &mut Criterion) {
    c.bench_function("sim/fifo_resource_1k_waiters", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let res = Resource::new(&sim, 4);
            for _ in 0..1000 {
                let r = res.clone();
                sim.spawn(async move {
                    r.visit(SimDuration::from_micros(10)).await;
                });
            }
            assert_eq!(sim.run(), 0);
            black_box(sim.now())
        })
    });
}

fn bench_end_to_end_provision(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("provision_one_charlie_node", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let cloud = Cloud::build(
                &sim,
                CloudConfig {
                    nodes: 1,
                    ..CloudConfig::default()
                },
            );
            let kernel = KernelImage::from_bytes("k", b"vmlinuz");
            let golden = cloud
                .bmi
                .create_golden("fedora", 8 << 30, 7, &kernel, "")
                .expect("golden");
            let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
            let node = cloud.nodes()[0];
            let p = sim
                .block_on(async move {
                    tenant
                        .provision(node, &SecurityProfile::charlie(), golden)
                        .await
                })
                .expect("provisions");
            black_box(p.report.total())
        })
    });
    g.bench_function("provision_16_nodes_attested", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let cloud = Cloud::build(&sim, CloudConfig::default());
            let kernel = KernelImage::from_bytes("k", b"vmlinuz");
            let golden = cloud
                .bmi
                .create_golden("fedora", 8 << 30, 7, &kernel, "")
                .expect("golden");
            let tenant = Tenant::new(&cloud, "bob").expect("tenant");
            let handles: Vec<_> = cloud
                .nodes()
                .into_iter()
                .map(|node| {
                    let tenant = tenant.clone();
                    sim.spawn(async move {
                        tenant
                            .provision(node, &SecurityProfile::bob(), golden)
                            .await
                            .expect("provisions")
                            .report
                            .total()
                    })
                })
                .collect();
            sim.run();
            black_box(handles.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_resource_contention,
    bench_end_to_end_provision
);
criterion_main!(benches);
