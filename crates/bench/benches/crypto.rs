//! Criterion benchmarks for the cryptographic substrate: the real cost
//! of the primitives the simulation's *cost models* stand in for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bolted_crypto::aead::Aead;
use bolted_crypto::chacha20::{chacha20_encrypt, Key};
use bolted_crypto::hmac::hmac_sha256;
use bolted_crypto::luks::{BlockDevice, LuksDevice, RamDisk, SECTOR_SIZE};
use bolted_crypto::prime::XorShiftSource;
use bolted_crypto::rsa::keypair_from_seed;
use bolted_crypto::sha256::sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 64 * 1024, 1024 * 1024] {
        let data = vec![0xAB; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    g.finish();
}

fn bench_chacha20(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20");
    let key = Key([7u8; 32]);
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = vec![0x5A; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| chacha20_encrypt(black_box(&key), &[1u8; 12], 0, black_box(data)))
        });
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 64 * 1024];
    let mut g = c.benchmark_group("hmac");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("hmac_sha256_64k", |b| {
        b.iter(|| hmac_sha256(b"key", black_box(&data)))
    });
    g.finish();
}

fn bench_aead(c: &mut Criterion) {
    let aead = Aead::new(&Key([3u8; 32]));
    let data = vec![0u8; 16 * 1024];
    let sealed = aead.seal(&[0u8; 12], b"", &data);
    let mut g = c.benchmark_group("aead");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("seal_16k", |b| {
        b.iter(|| aead.seal(&[0u8; 12], b"", black_box(&data)))
    });
    g.bench_function("open_16k", |b| {
        b.iter(|| {
            aead.open(&[0u8; 12], b"", black_box(&sealed))
                .expect("opens")
        })
    });
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsa");
    g.sample_size(10);
    for bits in [512usize, 1024] {
        let kp = keypair_from_seed(bits, 42);
        let sig = kp.private.sign(b"quote");
        g.bench_function(BenchmarkId::new("sign", bits), |b| {
            b.iter(|| kp.private.sign(black_box(b"quote")))
        });
        g.bench_function(BenchmarkId::new("verify", bits), |b| {
            b.iter(|| kp.public.verify(black_box(b"quote"), &sig))
        });
    }
    g.bench_function("keygen_512", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            keypair_from_seed(512, seed)
        })
    });
    g.finish();
}

fn bench_luks(c: &mut Criterion) {
    let mut g = c.benchmark_group("luks");
    g.throughput(Throughput::Bytes(SECTOR_SIZE as u64));
    let disk = RamDisk::new(1024);
    let mut rng = XorShiftSource::new(1);
    let mut luks = LuksDevice::format(disk, b"pw", &mut rng).expect("formats");
    let data = [0x42u8; SECTOR_SIZE];
    g.bench_function("write_sector", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1000;
            luks.write_sector(i, black_box(&data)).expect("writes")
        })
    });
    g.bench_function("read_sector", |b| {
        let mut buf = [0u8; SECTOR_SIZE];
        b.iter(|| luks.read_sector(5, black_box(&mut buf)).expect("reads"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_chacha20,
    bench_hmac,
    bench_aead,
    bench_rsa,
    bench_luks
);
criterion_main!(benches);
