//! Hot-path micro-bench: JSON lines on stdout, one per measurement plus
//! a summary speedup line per benchmark. `--quick` shrinks iteration
//! counts so the suite fits in a test run.
//!
//! ```text
//! cargo run --release -p bolted-bench --bin hotpath [-- --quick]
//! ```

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records = bolted_bench::hotpath::run(quick);
    print!("{}", bolted_bench::hotpath::to_json_lines(&records));
}
