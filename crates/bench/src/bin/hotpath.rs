//! Hot-path micro-bench: JSON lines on stdout, one per measurement plus
//! a summary speedup line per benchmark. `--quick` shrinks iteration
//! counts so the suite fits in a test run; `--smoke` shrinks them
//! further for the pre-commit verify gate (seconds, sanity only).
//!
//! ```text
//! cargo run --release -p bolted-bench --bin hotpath [-- --quick | --smoke]
//! ```

use bolted_bench::hotpath::Effort;

fn main() {
    let effort = if std::env::args().any(|a| a == "--smoke") {
        Effort::Smoke
    } else if std::env::args().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let records = bolted_bench::hotpath::run(effort);
    print!("{}", bolted_bench::hotpath::to_json_lines(&records));
}
