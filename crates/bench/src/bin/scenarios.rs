//! Adversarial-scenario artifact: the hostile-coexistence exit gate.
//!
//! Runs the six paper scenarios ([`bolted_core::paper_scenarios`]) at
//! pool worker counts 1, 2 and 4, checks that every isolation invariant
//! and degradation bound holds, and that the run fingerprint — every
//! measurement, span tree, metrics snapshot and check verdict — is
//! byte-identical across worker counts.
//!
//! ```text
//! cargo run --release -p bolted-bench --bin scenarios [-- --smoke]
//! ```
//!
//! Writes `results/scenarios.json` (per-scenario verdicts, measurements
//! and victim-vs-baseline degradation ratios) when run from the repo
//! root, and echoes the same JSON to stdout. `--smoke` runs the
//! smoke-scale worlds as a pass/fail verify gate and never writes the
//! file — a gate must not clobber the committed full-scale artifact.

use bolted_bench::determinism::{
    require_byte_identical, smoke_flag, write_artifact, DeterminismSweep,
};
use bolted_core::{paper_scenarios, ScenarioScale};
use bolted_crypto::sha256::sha256;
use bolted_sim::run_scenarios;

fn main() {
    let smoke = smoke_flag();
    let scale = if smoke {
        ScenarioScale::Smoke
    } else {
        ScenarioScale::Full
    };

    let mut sweep = DeterminismSweep::new();
    let mut report = None;
    for &workers in &[1usize, 2, 4] {
        let run = run_scenarios(paper_scenarios(scale), workers);
        let fp = run.fingerprint();
        eprintln!(
            "workers={workers} scenarios={} passed={} digest={}",
            run.outcomes.len(),
            run.passed(),
            &sha256(fp.as_bytes()).to_hex()[..12],
        );
        sweep.observe(&fp);
        report = Some(run);
    }
    let Some(report) = report else {
        eprintln!("no scenario runs executed");
        std::process::exit(1);
    };

    for outcome in &report.outcomes {
        let verdict = if outcome.passed() { "PASS" } else { "FAIL" };
        eprintln!("[{verdict}] {}: {}", outcome.name, outcome.description);
        for check in outcome.checks.iter().filter(|c| !c.passed) {
            eprintln!("       violated: {}", check.detail);
        }
    }

    let digest = sha256(sweep.fingerprint().as_bytes()).to_hex();
    let byte_identical = sweep.byte_identical();
    let json = {
        let body = report.to_json();
        // Wrap the harness JSON with the run-level identity fields the
        // artifact consumers key on.
        let inner = body
            .strip_prefix("{\n")
            .and_then(|rest| rest.strip_suffix("}\n"))
            .unwrap_or(&body);
        format!(
            "{{\n  \"bench\": \"scenarios\",\n  \"mode\": \"{}\",\n  \"passed\": {},\n  \
             \"byte_identical\": {byte_identical},\n  \"fingerprint_sha256\": \"{digest}\",\n{inner}}}\n",
            if smoke { "smoke" } else { "full" },
            report.passed(),
        )
    };
    print!("{json}");

    write_artifact(smoke, "results/scenarios.json", &json);
    require_byte_identical(&sweep, "scenario fingerprint");
    if !report.passed() {
        eprintln!("FAIL: scenarios violated bounds: {:?}", report.failures());
        std::process::exit(1);
    }
}
