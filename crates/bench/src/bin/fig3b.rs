//! Figure 3b: IPsec overhead between two servers (iperf).

use bolted_bench::{banner, f, print_table};
use bolted_crypto::CipherSuite;
use bolted_net::{iperf_standalone, LinkModel};

fn main() {
    banner(
        "IPsec network-encryption overhead (iperf, 10 GbE)",
        "Figure 3b (paper: HW+jumbo ≈ half line rate; SW and MTU 1500 worse)",
    );
    let mut rows = Vec::new();
    for (suite, label) in [
        (CipherSuite::None, "plain"),
        (CipherSuite::AesNi, "ipsec-hw (AES-NI)"),
        (CipherSuite::AesSw, "ipsec-sw"),
    ] {
        let g1500 = iperf_standalone(LinkModel::ten_gbe(), 2 << 30, suite).gbps;
        let g9000 = iperf_standalone(LinkModel::ten_gbe_jumbo(), 2 << 30, suite).gbps;
        rows.push(vec![label.to_string(), f(g1500, 2), f(g9000, 2)]);
    }
    print_table(&["config", "MTU 1500 (Gb/s)", "MTU 9000 (Gb/s)"], &rows);

    let plain = iperf_standalone(LinkModel::ten_gbe_jumbo(), 2 << 30, CipherSuite::None).gbps;
    let hw = iperf_standalone(LinkModel::ten_gbe_jumbo(), 2 << 30, CipherSuite::AesNi).gbps;
    println!(
        "best-case degradation (HW accel + jumbo frames): {:.1}x",
        plain / hw
    );
    println!("paper shape: \"even the best case ... almost a factor of two\".");
}
