//! Figure 3c: network-mounted storage (`dd` over iSCSI ← Ceph).

use bolted_bench::{banner, f, print_table};
use bolted_crypto::CipherSuite;
use bolted_sim::Sim;
use bolted_storage::{
    Backing, Cluster, Gateway, ImageStore, IscsiTarget, Transport, DEFAULT_READ_AHEAD,
    TUNED_READ_AHEAD,
};
use bolted_workloads::{dd_iscsi, DdOp, LuksCost};

fn run(luks: Option<LuksCost>, ipsec: bool, read_ahead: u64, op: DdOp) -> f64 {
    let sim = Sim::new();
    let cluster = Cluster::paper_default(&sim);
    let store = ImageStore::new(&cluster);
    let img = store
        .create("dd-volume", 8 << 30, Backing::Zero)
        .expect("image");
    let gateway = Gateway::new(&sim);
    let transport = if ipsec {
        Transport::ipsec_10g(CipherSuite::AesNi.default_cost())
    } else {
        Transport::plain_10g()
    };
    let target = IscsiTarget::new(&sim, &store, img, &gateway, transport, read_ahead);
    sim.block_on({
        let sim2 = sim.clone();
        async move { dd_iscsi(&sim2, &target, luks, op, 2 << 30, 1 << 20).await }
    })
    .mbps
}

fn main() {
    banner(
        "Network-mounted storage performance (dd over iSCSI + Ceph)",
        "Figure 3c (paper: 8 MiB read-ahead critical; LUKS small write cost; IPsec major)",
    );
    println!("--- main comparison (read-ahead = 8 MiB, the paper's tuning) ---");
    let mut rows = Vec::new();
    for (label, luks, ipsec) in [
        ("plain", None, false),
        ("luks", Some(LuksCost::aes_xts()), false),
        ("ipsec", None, true),
        ("luks+ipsec", Some(LuksCost::aes_xts()), true),
    ] {
        let read = run(luks, ipsec, TUNED_READ_AHEAD, DdOp::Read);
        let write = run(luks, ipsec, TUNED_READ_AHEAD, DdOp::Write);
        rows.push(vec![label.to_string(), f(read, 0), f(write, 0)]);
    }
    print_table(&["config", "read MB/s", "write MB/s"], &rows);

    println!("--- read-ahead ablation (plain reads) ---");
    let mut rows = Vec::new();
    for ra in [
        DEFAULT_READ_AHEAD,
        512 * 1024,
        2 << 20,
        4 << 20,
        TUNED_READ_AHEAD,
        16 << 20,
    ] {
        let read = run(None, false, ra, DdOp::Read);
        rows.push(vec![format!("{} KiB", ra / 1024), f(read, 0)]);
    }
    print_table(&["read-ahead", "read MB/s"], &rows);
    println!("paper shape: \"increasing the read ahead buffer size on Linux to 8MB");
    println!("was critical for performance\" (Ceph serves 4 MiB objects).");
}
