//! Figure 7: macro-benchmark performance under the security variants.
//!
//! Three groups, as in the paper: NPB/MPI kernels (EP, CG, FT, MG),
//! Spark TeraSort, and Filebench in a VM — each normalised to its
//! unencrypted baseline.

use bolted_bench::{banner, f, print_table};
use bolted_crypto::CipherSuite;
use bolted_sim::Sim;
use bolted_workloads::{
    filebench_standalone, run_npb, standalone_group, terasort_standalone, FilebenchConfig,
    NpbKernel, SecurityVariant, TeraSortConfig,
};

fn npb_time(kernel: NpbKernel, encrypted: bool) -> f64 {
    let sim = Sim::new();
    let cipher = encrypted.then(|| CipherSuite::AesNi.default_cost());
    let (_fabric, group) = standalone_group(&sim, 16, cipher);
    sim.block_on({
        let sim2 = sim.clone();
        async move { run_npb(&sim2, &group, kernel).await }
    })
    .duration
    .as_secs_f64()
}

fn main() {
    banner(
        "Macro-benchmarks under tenant security choices (16-node enclave)",
        "Figure 7 (paper: EP ~18% … CG ~200% under IPsec; TeraSort ~30% for LUKS+IPsec; Filebench ~50%)",
    );

    println!("--- NPB (MPI), normalised runtime: baseline vs IPsec ---");
    let mut rows = Vec::new();
    for k in NpbKernel::all() {
        let plain = npb_time(k, false);
        let enc = npb_time(k, true);
        rows.push(vec![
            k.name().to_string(),
            f(plain, 1),
            f(enc, 1),
            format!("+{:.0}%", (enc / plain - 1.0) * 100.0),
        ]);
    }
    print_table(&["kernel", "plain (s)", "ipsec (s)", "overhead"], &rows);

    println!("--- Spark TeraSort (260 GB, 16 servers) ---");
    let ts_cfg = TeraSortConfig::default();
    let base = terasort_standalone(SecurityVariant::Baseline, ts_cfg)
        .duration
        .as_secs_f64();
    let mut rows = Vec::new();
    for v in SecurityVariant::all() {
        let r = terasort_standalone(v, ts_cfg);
        let t = r.duration.as_secs_f64();
        rows.push(vec![
            v.name().to_string(),
            f(t, 1),
            format!("+{:.0}%", (t / base - 1.0) * 100.0),
            format!(
                "read {:.0} / cpu {:.0} / shuffle {:.0} / write {:.0}",
                r.phases[0].as_secs_f64(),
                r.phases[1].as_secs_f64(),
                r.phases[2].as_secs_f64(),
                r.phases[3].as_secs_f64()
            ),
        ]);
    }
    print_table(&["variant", "runtime (s)", "overhead", "phases"], &rows);

    println!("--- Filebench in a VM (1000 × 12 MB files) ---");
    let fb_cfg = FilebenchConfig::default();
    let base = filebench_standalone(SecurityVariant::Baseline, fb_cfg)
        .duration
        .as_secs_f64();
    let mut rows = Vec::new();
    for v in SecurityVariant::all() {
        let r = filebench_standalone(v, fb_cfg);
        let t = r.duration.as_secs_f64();
        rows.push(vec![
            v.name().to_string(),
            f(t, 1),
            f(r.ops_per_sec, 0),
            format!("+{:.0}%", (t / base - 1.0) * 100.0),
        ]);
    }
    print_table(&["variant", "runtime (s)", "ops/s", "overhead"], &rows);

    println!("paper takeaway: overheads vary enormously by workload — which is why");
    println!("Bolted lets each tenant pick its own point on the trade-off.");
}
