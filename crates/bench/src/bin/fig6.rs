//! Figure 6: IMA overhead on a Linux kernel compile, by thread count.

use bolted_bench::{banner, f, print_table};
use bolted_sim::SimDuration;
use bolted_workloads::{kcompile_standalone, KcompileConfig};

fn main() {
    banner(
        "IMA overhead on Linux kernel compile",
        "Figure 6 (paper: \"even in this unrealistic stress test IMA does not impose a noticeable overhead\")",
    );
    let cfg = KcompileConfig::default();
    let mut rows = Vec::new();
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let off = kcompile_standalone(threads, false, cfg)
            .duration
            .as_secs_f64();
        let on = kcompile_standalone(threads, true, cfg)
            .duration
            .as_secs_f64();
        rows.push(vec![
            format!("-j{threads}"),
            f(off, 1),
            f(on, 1),
            format!("{:+.2}%", (on / off - 1.0) * 100.0),
        ]);
    }
    print_table(&["threads", "no IMA (s)", "IMA (s)", "overhead"], &rows);

    println!("--- ablation: the same policy with a discrete hardware TPM ---");
    let slow = KcompileConfig {
        extend_cost: SimDuration::from_millis(10),
        ..KcompileConfig::default()
    };
    let mut rows = Vec::new();
    for threads in [1u32, 16, 32] {
        let off = kcompile_standalone(threads, false, slow)
            .duration
            .as_secs_f64();
        let on = kcompile_standalone(threads, true, slow)
            .duration
            .as_secs_f64();
        rows.push(vec![
            format!("-j{threads}"),
            f(off, 1),
            f(on, 1),
            format!("{:+.2}%", (on / off - 1.0) * 100.0),
        ]);
    }
    print_table(
        &["threads", "no IMA (s)", "IMA, 10ms extends (s)", "overhead"],
        &rows,
    );
    println!("(the paper's cluster used a software TPM, which is why Figure 6 is flat)");
}
