//! Figure 5: concurrently provisioning 1–16 servers, attested vs not.
//!
//! The contention sources are emergent: the Ceph spindle queues, the
//! shared iSCSI gateway, and (attested case) the prototype's single
//! airlock, which serialises attestation.

use bolted_bench::{banner, f, print_table};
use bolted_core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted_crypto::CipherSuite;
use bolted_firmware::{FirmwareKind, KernelImage};
use bolted_sim::{join_all, Sim};

fn run(n: usize, attested: bool, airlocks: usize) -> (f64, f64) {
    let profile = if attested {
        SecurityProfile::bob().on_uefi()
    } else {
        SecurityProfile::alice().on_uefi()
    };
    run_profile(n, profile, airlocks)
}

fn run_profile(n: usize, profile: SecurityProfile, airlocks: usize) -> (f64, f64) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: n,
            firmware: FirmwareKind::Uefi, // the paper's Figure 5 uses UEFI
            airlocks,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz+initrd");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "tenant").expect("tenant");
    let totals = sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let handles: Vec<_> = cloud
                .nodes()
                .into_iter()
                .map(|node| {
                    let tenant = tenant.clone();
                    let profile = profile.clone();
                    cloud.sim.spawn(async move {
                        tenant
                            .provision(node, &profile, golden)
                            .await
                            .expect("provisions")
                            .report
                            .total()
                            .as_secs_f64()
                    })
                })
                .collect();
            join_all(handles).await
        }
    });
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    let max = totals.iter().cloned().fold(0.0, f64::max);
    (mean, max)
}

fn main() {
    banner(
        "Concurrent provisioning (UEFI firmware)",
        "Figure 5 (paper: flat to 8 nodes, degradation at 16 — Ceph + serialized airlock)",
    );
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let (un_mean, _) = run(n, false, 1);
        let (at_mean, _) = run(n, true, 1);
        rows.push(vec![n.to_string(), f(un_mean, 1), f(at_mean, 1)]);
    }
    print_table(
        &["servers", "unattested mean (s)", "attested mean (s)"],
        &rows,
    );

    println!("--- ablation: multiple airlocks (the paper's proposed fix) ---");
    let mut rows = Vec::new();
    for airlocks in [1usize, 2, 4, 16] {
        let (mean, max) = run(16, true, airlocks);
        rows.push(vec![airlocks.to_string(), f(mean, 1), f(max, 1)]);
    }
    print_table(&["airlocks", "attested mean (s)", "slowest (s)"], &rows);
    println!("paper: \"we only support a single airlock at a time; attestation for");
    println!("provisioning is currently serialized ... we intend to address it\".");

    println!();
    println!("--- encrypted boot storm: single-stream vs wide ChaCha20 data plane ---");
    let mut rows = Vec::new();
    for n in [1usize, 4, 8, 16] {
        let (scalar_mean, _) = run_profile(
            n,
            SecurityProfile::bob()
                .on_uefi()
                .with_cipher(CipherSuite::ChaCha20Scalar),
            1,
        );
        let (wide_mean, _) = run_profile(
            n,
            SecurityProfile::bob()
                .on_uefi()
                .with_cipher(CipherSuite::ChaCha20Wide),
            1,
        );
        rows.push(vec![n.to_string(), f(scalar_mean, 1), f(wide_mean, 1)]);
    }
    print_table(
        &["servers", "chacha-scalar mean (s)", "chacha-wide mean (s)"],
        &rows,
    );
    println!("cipher cost models calibrated from this repo's measured kernels");
    println!("(BENCH_hotpath.json, sector_encrypt: streamed vs wide). The wide");
    println!("kernel lifts the secure channel past the NIC (1.35 vs 1.15 GB/s),");
    println!("so encryption stops being the wire bottleneck; what remains of the");
    println!("boot storm is attestation serialization and Ceph contention.");
}
