//! Figure 4: provisioning time of one server, with phase breakdown.
//!
//! Columns: Foreman (stateful baseline), then Bolted with UEFI and
//! LinuxBoot firmware under three trust scenarios — no attestation
//! (Alice), attestation (Bob), full attestation + LUKS + IPsec (Charlie).

use bolted_bench::{banner, f, print_table};
use bolted_core::{
    foreman_provision, Cloud, CloudConfig, ProvisionReport, SecurityProfile, Tenant,
};
use bolted_firmware::{FirmwareKind, KernelImage};
use bolted_sim::Sim;

fn provision(firmware: FirmwareKind, profile: SecurityProfile) -> ProvisionReport {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 1,
            firmware,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz+initrd");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "tenant").expect("tenant");
    let node = cloud.nodes()[0];
    sim.block_on(async move { tenant.provision(node, &profile, golden).await })
        .expect("provisions")
        .report
}

fn foreman() -> ProvisionReport {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 1,
            firmware: FirmwareKind::Uefi,
            ..CloudConfig::default()
        },
    );
    let node = cloud.nodes()[0];
    sim.block_on({
        let cloud = cloud.clone();
        async move { foreman_provision(&cloud, "lab", node).await }
    })
    .expect("provisions")
}

fn main() {
    banner(
        "Provisioning time of one server",
        "Figure 4 (paper: Foreman ~11 min; Bolted LinuxBoot <3 min unattested, <4 min attested; attestation ≈ +25%)",
    );
    let mut reports: Vec<(String, ProvisionReport)> = Vec::new();
    reports.push(("foreman".into(), foreman()));
    for fw in [FirmwareKind::Uefi, FirmwareKind::LinuxBoot] {
        for profile in [
            SecurityProfile::alice(),
            SecurityProfile::bob(),
            SecurityProfile::charlie(),
        ] {
            let profile = if fw == FirmwareKind::Uefi {
                profile.on_uefi()
            } else {
                profile
            };
            let label = format!(
                "{}/{}",
                if fw == FirmwareKind::Uefi {
                    "uefi"
                } else {
                    "linuxboot"
                },
                match profile.name.split('-').next().unwrap_or("") {
                    "alice" => "no-attest",
                    "bob" => "attested",
                    _ => "full",
                }
            );
            reports.push((label, provision(fw, profile)));
        }
    }

    // Phase-by-phase table.
    let mut phase_names: Vec<String> = Vec::new();
    for (_, r) in &reports {
        for (p, _) in &r.phases {
            if !phase_names.contains(p) {
                phase_names.push(p.clone());
            }
        }
    }
    let mut rows = Vec::new();
    for name in &phase_names {
        let mut row = vec![name.clone()];
        for (_, r) in &reports {
            row.push(
                r.phase(name)
                    .map(|d| f(d.as_secs_f64(), 1))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    let mut total_row = vec!["TOTAL".to_string()];
    for (_, r) in &reports {
        total_row.push(f(r.total().as_secs_f64(), 1));
    }
    rows.push(total_row);
    let headers: Vec<&str> = std::iter::once("phase (s)")
        .chain(reports.iter().map(|(l, _)| l.as_str()))
        .collect();
    print_table(&headers, &rows);

    let alice = reports
        .iter()
        .find(|(l, _)| l == "linuxboot/no-attest")
        .expect("present");
    let bob = reports
        .iter()
        .find(|(l, _)| l == "linuxboot/attested")
        .expect("present");
    let foreman_total = reports[0].1.total().as_secs_f64();
    let uefi_full = reports
        .iter()
        .find(|(l, _)| l == "uefi/full")
        .expect("present");
    println!(
        "attestation overhead (LinuxBoot): +{:.0}%",
        (bob.1.total().as_secs_f64() / alice.1.total().as_secs_f64() - 1.0) * 100.0
    );
    println!(
        "Bolted UEFI full vs Foreman: {:.1}x faster",
        foreman_total / uefi_full.1.total().as_secs_f64()
    );
}
