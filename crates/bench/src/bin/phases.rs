//! Phase-timing report from the span layer: provisions one Charlie
//! node and decomposes its boot time into the six instrumented phases
//! — the same breakdown as Figure 4, but reconstructed entirely from
//! spans and metrics rather than the orchestration's own stopwatch.
//!
//! Prints the table (snapshot: `results/phases.txt`) and writes the
//! machine-readable report to `results/metrics_phases.json`.

use bolted_bench::phases::charlie_phase_breakdown;
use bolted_bench::{banner, f, print_table};

fn main() {
    banner(
        "Provisioning phase breakdown from spans",
        "Figure 4's decomposition, measured by the observability layer",
    );
    let bd = charlie_phase_breakdown();
    println!("node {} [{}]\n", bd.node, bd.profile);
    let rows: Vec<Vec<String>> = bd
        .phases
        .iter()
        .map(|(phase, secs)| {
            vec![
                phase.clone(),
                f(*secs, 2),
                f(secs / bd.total_seconds * 100.0, 1),
            ]
        })
        .collect();
    print_table(&["phase", "seconds", "% of total"], &rows);
    let accounted: f64 = bd.phases.iter().map(|(_, s)| s).sum();
    println!(
        "total {:.2}s ({:.1}% accounted by the six phases;",
        bd.total_seconds,
        accounted / bd.total_seconds * 100.0
    );
    println!("the rest is downloads, airlock dwell and kernel-boot CPU)");

    let json = bd.to_json();
    match std::fs::write("results/metrics_phases.json", &json) {
        Ok(()) => println!("\nwrote results/metrics_phases.json"),
        Err(e) => println!("\ncould not write results/metrics_phases.json: {e}"),
    }
}
