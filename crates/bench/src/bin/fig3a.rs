//! Figure 3a: LUKS overhead on a block RAM disk (`dd`).

use bolted_bench::{banner, f, print_table};
use bolted_sim::Sim;
use bolted_workloads::{dd_device, DdOp, DeviceModel, LuksCost};

fn run(luks: Option<LuksCost>, op: DdOp) -> f64 {
    let sim = Sim::new();
    sim.block_on({
        let sim2 = sim.clone();
        async move { dd_device(&sim2, DeviceModel::ram_disk(), luks, op, 4 << 30, 1 << 20).await }
    })
    .mbps
}

fn main() {
    banner(
        "LUKS disk-encryption overhead on a block RAM disk",
        "Figure 3a (paper: reads ~1 GB/s, writes ~0.8 GB/s under LUKS)",
    );
    let mut rows = Vec::new();
    for (label, luks) in [("plain", None), ("luks", Some(LuksCost::aes_xts()))] {
        let read = run(luks, DdOp::Read);
        let write = run(luks, DdOp::Write);
        rows.push(vec![label.to_string(), f(read, 0), f(write, 0)]);
    }
    print_table(&["config", "read MB/s", "write MB/s"], &rows);

    let plain_r = run(None, DdOp::Read);
    let luks_r = run(Some(LuksCost::aes_xts()), DdOp::Read);
    let plain_w = run(None, DdOp::Write);
    let luks_w = run(Some(LuksCost::aes_xts()), DdOp::Write);
    println!(
        "read degradation:  {:.0}%   write degradation: {:.0}%",
        (1.0 - luks_r / plain_r) * 100.0,
        (1.0 - luks_w / plain_w) * 100.0
    );
    println!("paper shape: LUKS sustains ~1 GB/s reads / ~0.8 GB/s writes —");
    println!("enough to keep up with local disks and 10 Gbit network storage.");
}
