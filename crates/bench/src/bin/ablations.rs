//! Ablations on the design choices DESIGN.md calls out: what actually
//! buys Bolted its elasticity and detection latency.

use bolted_bench::{banner, f, print_table};
use bolted_core::{revocation_experiment, Cloud, CloudConfig, Enclave, SecurityProfile, Tenant};
use bolted_firmware::KernelImage;
use bolted_keylime::{ImaWhitelist, VerifierConfig};
use bolted_sim::{Sim, SimDuration};
use bolted_tpm::TpmTimings;

fn attested_provision_time(tpm_timings: TpmTimings) -> f64 {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 1,
            ..CloudConfig::default()
        },
    );
    let node = cloud.nodes()[0];
    cloud.machine(node).with_tpm(|t| t.set_timings(tpm_timings));
    let kernel = KernelImage::from_bytes("k", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "bob").expect("tenant");
    sim.block_on(async move {
        tenant
            .provision(node, &SecurityProfile::bob(), golden)
            .await
    })
    .expect("provisions")
    .report
    .total()
    .as_secs_f64()
}

fn detection_latency(poll_secs_tenths: u64) -> f64 {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 2,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("k", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let config = VerifierConfig {
        poll_interval: SimDuration::from_millis(poll_secs_tenths * 100),
        ..VerifierConfig::default()
    };
    let tenant = Tenant::with_verifier_config(&cloud, "charlie", config).expect("tenant");
    tenant.set_ima_whitelist(ImaWhitelist::new());
    let report = sim.block_on({
        let (cloud, tenant) = (cloud.clone(), tenant.clone());
        async move {
            let mut members = Vec::new();
            for n in cloud.nodes() {
                members.push(
                    tenant
                        .provision(n, &SecurityProfile::charlie(), golden)
                        .await
                        .expect("provisions"),
                );
            }
            let enclave = Enclave::form(&cloud, members);
            revocation_experiment(&cloud, &tenant, &enclave, 0, SimDuration::from_secs(21)).await
        }
    });
    report.detection_latency().as_secs_f64()
}

fn main() {
    banner(
        "Design ablations",
        "DESIGN.md §4 — sensitivity of the headline results to design constants",
    );

    println!("--- TPM quote/AIK latency vs attested provisioning time ---");
    println!("(the paper suggests porting the Python agent to Rust and notes the");
    println!(" attestation path is unoptimised; a faster TPM path shrinks it further)");
    let mut rows = Vec::new();
    for (label, quote_ms, aik_s) in [
        ("software TPM (fast)", 30u64, 1u64),
        ("fTPM-class", 200, 4),
        ("paper default", 750, 12),
        ("slow discrete TPM", 1500, 25),
    ] {
        let t = attested_provision_time(TpmTimings {
            quote_ns: quote_ms * 1_000_000,
            create_aik_ns: aik_s * 1_000_000_000,
            ..TpmTimings::default()
        });
        rows.push(vec![label.to_string(), f(t, 1)]);
    }
    print_table(&["TPM class", "attested provision (s)"], &rows);

    println!("--- verifier poll interval vs IMA detection latency (§7.4) ---");
    let mut rows = Vec::new();
    for tenths in [5u64, 10, 20, 40, 80] {
        let d = detection_latency(tenths);
        rows.push(vec![format!("{:.1}s", tenths as f64 / 10.0), f(d, 2)]);
    }
    print_table(&["poll interval", "detection latency (s)"], &rows);
    println!("detection ≈ uniform(0, poll) + quote + verify: tighter polling buys");
    println!("faster detection at the cost of TPM/verifier load.");
}
