//! Reconciler churn bench: the tentpole exit artifact for the
//! declarative control plane.
//!
//! Drives [`bolted_core::reconcile_fleet_parallel`] over a sharded
//! datacenter — 10k nodes, 500 desired-state tenants at full scale —
//! through several epochs of continuous churn (scale-up, scale-down,
//! profile flips, network growth) under an injected flaky-BMC
//! [`FaultPlan`], at pool worker counts 1, 2 and 4. Every run must:
//!
//! * converge every shard in every epoch,
//! * hold every isolation invariant (zero cross-tenant paths, nothing
//!   quarantined, key releases exactly tracking attested provisions),
//! * exercise convergent recovery (the injected faults abandon nodes
//!   that the next tick re-claims), and
//! * produce a byte-identical run digest at every worker count.
//!
//! ```text
//! cargo run --release -p bolted-bench --bin reconcile [-- --smoke]
//! ```
//!
//! Writes `BENCH_reconcile.json` into the current directory (run from
//! the repo root) and echoes the same JSON to stdout. `--smoke` shrinks
//! the fleet for the verify gate and never writes the file.

use std::fmt::Write as _;
use std::time::Instant;

use bolted_bench::determinism::{
    require_byte_identical, smoke_flag, write_artifact, DeterminismSweep,
};
use bolted_core::{reconcile_fleet_parallel, ReconcileFleetSpec, ReconcileRunReport};

struct Run {
    workers: usize,
    wall_seconds: f64,
}

fn main() {
    let smoke = smoke_flag();
    let spec = if smoke {
        ReconcileFleetSpec::new(4, 12, 2, 2, 0xAD5E_0007)
    } else {
        // The ISSUE 10 scale: 50 shards x 200 nodes = 10k nodes, 500
        // desired-state tenants, three epochs of churn.
        ReconcileFleetSpec::new(50, 200, 10, 3, 0xAD5E_0007)
    };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    let mut runs: Vec<Run> = Vec::new();
    let mut sweep = DeterminismSweep::new();
    let mut last: Option<ReconcileRunReport> = None;
    for &workers in worker_counts {
        let t0 = Instant::now();
        let report = match reconcile_fleet_parallel(&spec, workers) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("reconcile run failed at {workers} workers: {e}");
                std::process::exit(1);
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let d = report.digest().to_hex();
        eprintln!(
            "workers={workers:<3} nodes={} tenants={} ticks={} provisioned={} released={} \
             deferred={} converged={} violations={} wall={wall:.2}s digest={}",
            spec.total_nodes(),
            spec.total_tenants(),
            report.total("ticks"),
            report.total("provision_ok"),
            report.total("released"),
            report.total("deferred"),
            report.converged(),
            report.violations().len(),
            &d[..12],
        );
        sweep.observe(&d);
        runs.push(Run {
            workers,
            wall_seconds: wall,
        });
        last = Some(report);
    }
    let Some(report) = last else {
        eprintln!("no reconcile runs executed");
        std::process::exit(1);
    };

    let violations = report.violations();
    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"reconcile\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"shards\": {},", spec.shards);
    let _ = writeln!(json, "  \"nodes_per_shard\": {},", spec.nodes_per_shard);
    let _ = writeln!(json, "  \"tenants_per_shard\": {},", spec.tenants_per_shard);
    let _ = writeln!(json, "  \"total_nodes\": {},", spec.total_nodes());
    let _ = writeln!(json, "  \"total_tenants\": {},", spec.total_tenants());
    let _ = writeln!(json, "  \"epochs\": {},", spec.epochs);
    let _ = writeln!(json, "  \"seed\": {},", spec.seed);
    let _ = writeln!(json, "  \"converged\": {},", report.converged());
    let _ = writeln!(json, "  \"isolation_violations\": {},", violations.len());
    for name in [
        "ticks",
        "planned",
        "deferred",
        "dropped",
        "provision_ok",
        "provision_failed",
        "released",
        "networks_created",
    ] {
        let _ = writeln!(json, "  \"{name}\": {},", report.total(name));
    }
    let _ = writeln!(json, "  \"digest\": \"{}\",", sweep.fingerprint());
    let _ = writeln!(json, "  \"byte_identical\": {},", sweep.byte_identical());
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"wall_seconds\": {:.3}}}{comma}",
            r.workers, r.wall_seconds,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    print!("{json}");

    write_artifact(smoke, "BENCH_reconcile.json", &json);
    require_byte_identical(&sweep, "reconcile digest");
    if !violations.is_empty() {
        eprintln!("FAIL: isolation invariants violated under churn");
        std::process::exit(1);
    }
    if !report.converged() {
        eprintln!("FAIL: a shard missed convergence in some epoch");
        std::process::exit(1);
    }
    if report.total("provision_failed") == 0.0 {
        eprintln!("FAIL: injected faults never exercised abandon-to-Free recovery");
        std::process::exit(1);
    }
    if report.total("dropped") > 0.0 {
        eprintln!("FAIL: reconciler dropped work — backpressure must defer");
        std::process::exit(1);
    }
}
