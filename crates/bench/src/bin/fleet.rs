//! Fleet provisioning throughput bench: the tentpole exit artifact for
//! the `Send`-everything control plane.
//!
//! Provisions the same sharded [`FleetSpec`] at worker counts 1, 2, 4,
//! …, N (all cores) through [`provision_fleet_parallel`], measuring
//! wall-clock throughput (nodes/second) at each pool size and checking
//! that every run's [`FleetRunReport::digest`] — spans, metrics and
//! outcome counts, all shards — is byte-identical. Near-linear scaling
//! plus equal digests is the whole point: worker count buys wall-clock
//! time and nothing else.
//!
//! ```text
//! cargo run --release -p bolted-bench --bin fleet [-- --smoke]
//! ```
//!
//! Writes `BENCH_fleet.json` into the current directory (run from the
//! repo root) and echoes the same JSON to stdout. `--smoke` shrinks the
//! fleet to a few dozen nodes and two pool sizes for the verify gate
//! and skips the file write (a gate must not clobber the committed
//! artifact); the full run provisions a 1024-node fleet.

use std::fmt::Write as _;
use std::time::Instant;

use bolted_bench::determinism::{
    require_byte_identical, smoke_flag, write_artifact, DeterminismSweep,
};
use bolted_core::{provision_fleet_parallel, FleetSpec};

struct Run {
    workers: usize,
    wall_seconds: f64,
    nodes_per_second: f64,
}

fn main() {
    let smoke = smoke_flag();
    // Shard count and seed are part of the spec — host-independent — so
    // the digest is comparable across machines as well as pool sizes.
    let spec = if smoke {
        FleetSpec::new(8, 4, 0xF1EE7)
    } else {
        FleetSpec::new(64, 16, 0xF1EE7)
    };
    // Pool sizes 1, 2, 4, then all cores. Sizes beyond the core count
    // still run (threads timeshare) — they demonstrate that pool size is
    // scheduling-only, which is half the acceptance criterion; the other
    // half (near-linear scaling) needs the cores to exist.
    let max = bolted_sim::max_workers();
    let mut worker_counts: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };
    if max > *worker_counts.last().unwrap_or(&1) {
        worker_counts.push(max);
    }

    let mut runs: Vec<Run> = Vec::new();
    let mut sweep = DeterminismSweep::new();
    for &workers in &worker_counts {
        let t0 = Instant::now();
        let report = match provision_fleet_parallel(&spec, workers) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet run failed at {workers} workers: {e}");
                std::process::exit(1);
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let d = report.digest().to_hex();
        eprintln!(
            "workers={workers:<3} nodes={} ok={} wall={wall:.2}s ({:.1} nodes/s) digest={}",
            spec.total_nodes(),
            report.ok(),
            spec.total_nodes() as f64 / wall,
            &d[..12],
        );
        if report.ok() != spec.total_nodes() {
            eprintln!(
                "fleet run at {workers} workers: {} of {} nodes failed",
                report.failed(),
                spec.total_nodes()
            );
            std::process::exit(1);
        }
        sweep.observe(&d);
        runs.push(Run {
            workers,
            wall_seconds: wall,
            nodes_per_second: spec.total_nodes() as f64 / wall,
        });
    }

    let base = runs.first().map_or(1.0, |r| r.nodes_per_second);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fleet\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"shards\": {},", spec.shards);
    let _ = writeln!(json, "  \"nodes_per_shard\": {},", spec.nodes_per_shard);
    let _ = writeln!(json, "  \"total_nodes\": {},", spec.total_nodes());
    let _ = writeln!(json, "  \"seed\": {},", spec.seed);
    // Scaling is bounded by the cores that exist: pool sizes beyond
    // `cores` timeshare and can only show digest stability, not speedup.
    let _ = writeln!(json, "  \"cores\": {max},");
    let _ = writeln!(json, "  \"digest\": \"{}\",", sweep.fingerprint());
    let _ = writeln!(json, "  \"byte_identical\": {},", sweep.byte_identical());
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"wall_seconds\": {:.3}, \"nodes_per_second\": {:.1}, \"speedup_vs_1\": {:.2}}}{comma}",
            r.workers,
            r.wall_seconds,
            r.nodes_per_second,
            r.nodes_per_second / base,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    print!("{json}");
    write_artifact(smoke, "BENCH_fleet.json", &json);
    require_byte_identical(&sweep, "run digest");
}
