//! §5/§9: TCB size — HIL is the only provider-trusted component, and it
//! is small ("approximately 3000 LOC" in the paper's prototype).

use bolted_bench::{banner, f, print_table};

fn loc_of(path: &str) -> (usize, usize) {
    // (code lines, total lines) over all .rs files under `path`,
    // excluding test modules and comment/blank lines for the code count.
    let mut code = 0usize;
    let mut total = 0usize;
    let mut stack = vec![std::path::PathBuf::from(path)];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let Ok(text) = std::fs::read_to_string(&p) else {
                    continue;
                };
                let mut in_tests = false;
                let mut depth = 0i32;
                for line in text.lines() {
                    total += 1;
                    let trimmed = line.trim();
                    if trimmed.starts_with("#[cfg(test)]") {
                        in_tests = true;
                    }
                    if in_tests {
                        depth += trimmed.matches('{').count() as i32;
                        depth -= trimmed.matches('}').count() as i32;
                        if depth <= 0 && trimmed.contains('}') {
                            in_tests = false;
                            depth = 0;
                        }
                        continue;
                    }
                    if trimmed.is_empty()
                        || trimmed.starts_with("//")
                        || trimmed.starts_with("///")
                        || trimmed.starts_with("//!")
                    {
                        continue;
                    }
                    code += 1;
                }
            }
        }
    }
    (code, total)
}

fn main() {
    banner(
        "Trusted computing base: provider-trusted code vs everything else",
        "§5 (paper: HIL ≈ 3000 LOC; all other services are tenant-deployable)",
    );
    let components = [
        ("hil (provider TCB)", "crates/hil/src", true),
        ("net substrate", "crates/net/src", false),
        ("keylime (tenant)", "crates/keylime/src", false),
        ("bmi (tenant)", "crates/bmi/src", false),
        ("firmware model", "crates/firmware/src", false),
        ("storage substrate", "crates/storage/src", false),
        ("tpm", "crates/tpm/src", false),
        ("crypto", "crates/crypto/src", false),
        ("core orchestration", "crates/core/src", false),
        ("sim engine", "crates/sim/src", false),
        ("workloads", "crates/workloads/src", false),
    ];
    let mut rows = Vec::new();
    let mut tcb = 0usize;
    let mut rest = 0usize;
    for (name, path, in_tcb) in components {
        let (code, total) = loc_of(path);
        if in_tcb {
            tcb += code;
        } else {
            rest += code;
        }
        rows.push(vec![
            name.to_string(),
            code.to_string(),
            total.to_string(),
            if in_tcb {
                "PROVIDER-TRUSTED"
            } else {
                "tenant-deployable / substrate"
            }
            .to_string(),
        ]);
    }
    print_table(&["component", "code LOC", "total lines", "trust"], &rows);
    println!(
        "provider TCB: {tcb} LOC ({}% of the {} LOC codebase)",
        f(tcb as f64 * 100.0 / (tcb + rest) as f64, 1),
        tcb + rest
    );
    println!("paper: \"In our effort to minimize this TCB we have worked hard to");
    println!("keep HIL very simple (approximately 3000 LOC)\".");
}
