//! §7.4: continuous-attestation detection and revocation latency.
//!
//! The paper: a script not on the whitelist runs on one server; Keylime
//! detects the policy violation "in under one second" of quote checking
//! and the full cryptographic ban of the node takes "approximately 3
//! seconds".

use bolted_bench::{banner, f, print_table};
use bolted_core::{revocation_experiment, Cloud, CloudConfig, Enclave, SecurityProfile, Tenant};
use bolted_firmware::KernelImage;
use bolted_keylime::ImaWhitelist;
use bolted_sim::{Sim, SimDuration};

fn run_once(nodes: usize, misbehave_secs: u64) -> (f64, f64) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    tenant.set_ima_whitelist(ImaWhitelist::new());
    let report = sim.block_on({
        let (cloud, tenant) = (cloud.clone(), tenant.clone());
        async move {
            let mut members = Vec::new();
            for node in cloud.nodes() {
                members.push(
                    tenant
                        .provision(node, &SecurityProfile::charlie(), golden)
                        .await
                        .expect("provisions"),
                );
            }
            let enclave = Enclave::form(&cloud, members);
            revocation_experiment(
                &cloud,
                &tenant,
                &enclave,
                0,
                SimDuration::from_secs(misbehave_secs),
            )
            .await
        }
    });
    (
        report.detection_latency().as_secs_f64(),
        report.total_latency().as_secs_f64(),
    )
}

fn main() {
    banner(
        "Continuous attestation: violation → detection → cryptographic ban",
        "§7.4 (paper: detection < 1 s of verification; full revocation ≈ 3 s)",
    );
    let mut rows = Vec::new();
    for (nodes, at) in [(4usize, 11u64), (8, 13), (16, 17), (16, 20), (16, 23)] {
        let (detect, total) = run_once(nodes, at);
        rows.push(vec![
            nodes.to_string(),
            format!("t+{at}s"),
            f(detect, 2),
            f(total, 2),
        ]);
    }
    print_table(
        &[
            "enclave size",
            "violation at",
            "detection (s)",
            "full ban (s)",
        ],
        &rows,
    );
    println!("detection latency = poll-phase offset + quote (0.75 s) + verify;");
    println!("ban adds one notification RTT + per-node SA teardown, in parallel.");
}
