//! Dependency-free micro-benchmarks for the attestation hot path.
//!
//! Measures the optimised kernels — modular exponentiation,
//! RSA-verify-shaped modpow, SHA-256 compression, multi-buffer SHA-256
//! and LUKS sector encryption — each against an in-repo "before"
//! reference (the legacy `BigUint::modpow`, a rolled SHA-256
//! compression loop, single-stream hashing, the single-stream ChaCha20
//! sector path), so the speedup is recorded next to the code that
//! earned it. Plain `std::time::Instant`, JSON-lines output, no
//! external crates: it runs in the offline build where criterion
//! cannot.

use std::time::Instant;

use bolted_crypto::chacha20::{chacha20_block, Key, NONCE_LEN};
use bolted_crypto::{
    sha256_many, BigUint, Montgomery, RandomSource, SectorCipher, XorShiftSource, SECTOR_SIZE,
};

/// How much wall clock to spend: `Full` for recorded figures, `Quick`
/// for `cargo test`, `Smoke` for the pre-commit verify gate (seconds,
/// sanity only — ratios still hold but with wide error bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Recorded-figure precision (the numbers in `BENCH_hotpath.json`).
    Full,
    /// Fits inside `cargo test`.
    Quick,
    /// Fastest possible end-to-end pass for the verify gate.
    Smoke,
}

impl Effort {
    fn pick<T>(self, full: T, quick: T, smoke: T) -> T {
        match self {
            Effort::Full => full,
            Effort::Quick => quick,
            Effort::Smoke => smoke,
        }
    }
}

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name, e.g. `rsa_verify_2048`.
    pub bench: String,
    /// Variant, baseline first: `legacy`/`montgomery`, `rolled`/`unrolled`, …
    pub variant: String,
    /// Iterations timed (after one warm-up iteration).
    pub iters: u32,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Bytes processed per operation, when throughput is meaningful.
    pub bytes_per_op: Option<u64>,
}

impl Record {
    /// Throughput in MiB/s, when `bytes_per_op` is known.
    pub fn mib_per_s(&self) -> Option<f64> {
        self.bytes_per_op
            .map(|b| b as f64 / (1 << 20) as f64 / (self.ns_per_op * 1e-9))
    }

    /// The record as one JSON object (hand-rolled; no serde offline).
    pub fn json(&self) -> String {
        let mut s = format!(
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"iters\":{},\"ns_per_op\":{:.1}",
            self.bench, self.variant, self.iters, self.ns_per_op
        );
        if let Some(t) = self.mib_per_s() {
            s.push_str(&format!(",\"mib_per_s\":{t:.1}"));
        }
        s.push('}');
        s
    }
}

/// Baseline-over-optimised ratio for `bench`: how many times faster the
/// second-listed variant is than the first. `None` unless exactly the
/// expected two variants were recorded.
pub fn speedup(records: &[Record], bench: &str) -> Option<f64> {
    let mut pair = records.iter().filter(|r| r.bench == bench);
    let baseline = pair.next()?;
    let optimised = pair.next()?;
    Some(baseline.ns_per_op / optimised.ns_per_op)
}

/// All records as JSON lines, with one trailing summary line per bench.
pub fn to_json_lines(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.json());
        out.push('\n');
    }
    let mut seen = Vec::new();
    for r in records {
        if !seen.contains(&r.bench) {
            seen.push(r.bench.clone());
        }
    }
    for bench in seen {
        if let Some(s) = speedup(records, &bench) {
            out.push_str(&format!("{{\"bench\":\"{bench}\",\"speedup\":{s:.2}}}\n"));
        }
    }
    out
}

/// Times a baseline/optimised pair in interleaved rounds: each round
/// runs a batch of `op_a` then a batch of `op_b`, so slow drift in
/// machine load lands on both variants and cancels in their ratio.
/// Returns mean nanoseconds per op as `(a, b)` after one warm-up each.
fn time_pair<A: FnMut(), B: FnMut()>(
    rounds: u32,
    iters_a: u32,
    iters_b: u32,
    mut op_a: A,
    mut op_b: B,
) -> (f64, f64) {
    op_a(); // warm-up: page in code, fill allocator caches
    op_b();
    let (mut ns_a, mut ns_b) = (0u128, 0u128);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters_a {
            op_a();
        }
        ns_a += t0.elapsed().as_nanos();
        let t0 = Instant::now();
        for _ in 0..iters_b {
            op_b();
        }
        ns_b += t0.elapsed().as_nanos();
    }
    (
        ns_a as f64 / f64::from(rounds * iters_a),
        ns_b as f64 / f64::from(rounds * iters_b),
    )
}

/// Builds the two [`Record`]s of one benchmark from a paired measurement.
#[allow(clippy::too_many_arguments)]
fn record_pair(
    records: &mut Vec<Record>,
    bench: &str,
    variants: (&str, &str),
    iters: (u32, u32),
    ns: (f64, f64),
    bytes_per_op: Option<u64>,
) {
    records.push(Record {
        bench: bench.into(),
        variant: variants.0.into(),
        iters: iters.0,
        ns_per_op: ns.0,
        bytes_per_op,
    });
    records.push(Record {
        bench: bench.into(),
        variant: variants.1.into(),
        iters: iters.1,
        ns_per_op: ns.1,
        bytes_per_op,
    });
}

fn random_biguint(bytes: usize, rng: &mut XorShiftSource) -> BigUint {
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    BigUint::from_bytes_be(&buf)
}

/// An RSA-shaped 2048-bit modulus: the product of two random odd
/// 1024-bit numbers (primality is irrelevant for arithmetic cost).
fn rsa_shaped_modulus(rng: &mut XorShiftSource) -> BigUint {
    let odd_1024 = |rng: &mut XorShiftSource| {
        let mut buf = vec![0u8; 128];
        rng.fill_bytes(&mut buf);
        buf[0] |= 0x80;
        buf[127] |= 1;
        BigUint::from_bytes_be(&buf)
    };
    odd_1024(rng).mul(&odd_1024(rng))
}

// ---------------------------------------------------------------------
// "Before" references, kept here so the comparison survives in-repo.
// ---------------------------------------------------------------------

/// The pre-unroll SHA-256: same schedule, rolled 64-iteration
/// compression loop. Cross-checked against the real implementation at
/// the start of every run.
fn sha256_rolled(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d) = (h[0], h[1], h[2], h[3]);
        let (mut e, mut f, mut g, mut hh) = (h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *s = s.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The single-stream LUKS keystream path (the data plane before the
/// wide rework), copied here as the sector baseline: every 64-byte
/// block of a sector gets its own full scalar 20-round ChaCha20 core —
/// correct and allocation-free, but strictly serial. The 20 rounds
/// dominate; state setup per block is noise.
fn sector_xor_streamed(key: &Key, nonce: &[u8; NONCE_LEN], buf: &mut [u8]) {
    for (idx, chunk) in buf.chunks_mut(64).enumerate() {
        let ks = chacha20_block(key, idx as u32, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Runs every hot-path benchmark at the given [`Effort`].
pub fn run(effort: Effort) -> Vec<Record> {
    let mut rng = XorShiftSource::new(0xB017ED);
    let mut records = Vec::new();

    // --- modular exponentiation, RSA-2048 shapes --------------------
    let m = rsa_shaped_modulus(&mut rng);
    let base = random_biguint(192, &mut rng);
    let e = BigUint::from_u64(65537);
    let d = random_biguint(256, &mut rng); // full-size private-shaped exponent
    let ctx = Montgomery::new(&m).expect("odd modulus");
    assert_eq!(
        ctx.pow(&base, &e),
        base.modpow(&e, &m),
        "verify cross-check"
    );

    // The optimised side gets more iterations per round so both batches
    // cover a similar stretch of wall clock within each round.
    let (rounds, it_l, it_m) = effort.pick((16, 4, 16), (4, 2, 8), (2, 1, 4));
    let ns = time_pair(
        rounds,
        it_l,
        it_m,
        || {
            std::hint::black_box(base.modpow(&e, &m));
        },
        || {
            std::hint::black_box(ctx.pow(&base, &e));
        },
    );
    record_pair(
        &mut records,
        "rsa_verify_2048",
        ("legacy", "montgomery"),
        (rounds * it_l, rounds * it_m),
        ns,
        None,
    );

    let (rounds, it_l, it_m) = effort.pick((4, 1, 6), (2, 1, 4), (1, 1, 2));
    let ns = time_pair(
        rounds,
        it_l,
        it_m,
        || {
            std::hint::black_box(base.modpow(&d, &m));
        },
        || {
            std::hint::black_box(ctx.pow(&base, &d));
        },
    );
    record_pair(
        &mut records,
        "modpow_2048_full_exp",
        ("legacy", "montgomery"),
        (rounds * it_l, rounds * it_m),
        ns,
        None,
    );

    // --- SHA-256 -----------------------------------------------------
    let buf_len = effort.pick(1 << 20, 64 << 10, 16 << 10);
    let mut buf = vec![0u8; buf_len];
    rng.fill_bytes(&mut buf);
    assert_eq!(
        sha256_rolled(&buf),
        bolted_crypto::sha256(&buf).0,
        "rolled reference cross-check"
    );
    let (rounds, iters) = effort.pick((8, 2), (2, 2), (1, 1));
    let ns = time_pair(
        rounds,
        iters,
        iters,
        || {
            std::hint::black_box(sha256_rolled(&buf));
        },
        || {
            std::hint::black_box(bolted_crypto::sha256(&buf));
        },
    );
    record_pair(
        &mut records,
        "sha256",
        ("rolled", "unrolled"),
        (rounds * iters, rounds * iters),
        ns,
        Some(buf_len as u64),
    );

    // --- multi-buffer SHA-256 ---------------------------------------
    // 16 independent messages (an IMA measurement burst): single-stream
    // hashing walks them one by one; the multi-buffer kernel interleaves
    // all 16 through one SoA compression sweep.
    let msg_len = effort.pick(64 << 10, 8 << 10, 2 << 10);
    let msgs: Vec<Vec<u8>> = (0..16)
        .map(|_| {
            let mut m = vec![0u8; msg_len];
            rng.fill_bytes(&mut m);
            m
        })
        .collect();
    let views: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    {
        let serial: Vec<_> = views.iter().map(|m| bolted_crypto::sha256(m)).collect();
        assert_eq!(serial, sha256_many(&views), "multi-buffer cross-check");
    }
    // Many short interleaved rounds: on a shared vCPU a noise burst then
    // lands on a sliver of both variants instead of one whole batch.
    let (rounds, iters) = effort.pick((64, 2), (2, 2), (1, 1));
    let ns = time_pair(
        rounds,
        iters,
        iters,
        || {
            for m in &views {
                std::hint::black_box(bolted_crypto::sha256(m));
            }
        },
        || {
            std::hint::black_box(sha256_many(&views));
        },
    );
    record_pair(
        &mut records,
        "sha256_mb",
        ("single_stream", "multibuffer_x16"),
        (rounds * iters, rounds * iters),
        ns,
        Some((16 * msg_len) as u64),
    );

    // --- LUKS sector encryption --------------------------------------
    let mut key_bytes = [0u8; 32];
    rng.fill_bytes(&mut key_bytes);
    let key = Key(key_bytes);
    let scipher = SectorCipher::new(&key);
    let sectors = effort.pick(1024usize, 64, 16);
    let mut disk = vec![0u8; sectors * SECTOR_SIZE];
    rng.fill_bytes(&mut disk);
    {
        // Cross-check: per-sector streamed keystream == wide batched
        // keystream (same per-sector nonce construction).
        let mut a = disk.clone();
        for (s, chunk) in a.chunks_mut(SECTOR_SIZE).enumerate() {
            let mut nonce = [0u8; NONCE_LEN];
            nonce[..8].copy_from_slice(&(s as u64).to_le_bytes());
            sector_xor_streamed(&key, &nonce, chunk);
        }
        let mut b = disk.clone();
        scipher.xor_sectors(0, &mut b);
        assert_eq!(a, b, "sector keystream cross-check");
    }
    // Same fine-grained interleave as sha256_mb, for the same reason.
    let (rounds, iters) = effort.pick((64, 2), (2, 2), (1, 1));
    // Each closure owns its copy of the disk so both can borrow mutably.
    let mut disk_a = disk.clone();
    let mut disk_b = disk.clone();
    let ns = time_pair(
        rounds,
        iters,
        iters,
        || {
            for (s, chunk) in disk_a.chunks_mut(SECTOR_SIZE).enumerate() {
                let mut nonce = [0u8; NONCE_LEN];
                nonce[..8].copy_from_slice(&(s as u64).to_le_bytes());
                sector_xor_streamed(&key, &nonce, chunk);
            }
        },
        || {
            scipher.xor_sectors(0, &mut disk_b);
        },
    );
    record_pair(
        &mut records,
        "sector_encrypt",
        ("streamed", "wide"),
        (rounds * iters, rounds * iters),
        ns,
        Some(disk.len() as u64),
    );

    records
}
