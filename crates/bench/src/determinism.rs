//! Shared harness plumbing for the determinism bench bins.
//!
//! Every worker-sweep bin (`fleet`, `scenarios`, `reconcile`) follows
//! the same protocol: parse `--smoke`, run the same spec at several pool
//! worker counts, compare a run fingerprint across the sweep, write the
//! committed artifact only on a full run, and exit nonzero on
//! divergence. This module is that protocol, written once — the bins
//! keep only their spec, their measurements and their JSON shape.

use std::process::exit;

/// True when the process was invoked with `--smoke`: run the toy-sized
/// gate variant and never touch the committed artifact.
pub fn smoke_flag() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Accumulates one fingerprint per worker-count run and tracks whether
/// they all agreed.
#[derive(Debug, Default)]
pub struct DeterminismSweep {
    fingerprint: Option<String>,
    byte_identical: bool,
}

impl DeterminismSweep {
    /// An empty sweep (vacuously byte-identical).
    pub fn new() -> DeterminismSweep {
        DeterminismSweep {
            fingerprint: None,
            byte_identical: true,
        }
    }

    /// Records one run's fingerprint; returns whether it matched the
    /// first run's (the first observation always matches).
    pub fn observe(&mut self, fingerprint: &str) -> bool {
        match &self.fingerprint {
            None => {
                self.fingerprint = Some(fingerprint.to_string());
                true
            }
            Some(first) if first == fingerprint => true,
            Some(_) => {
                self.byte_identical = false;
                false
            }
        }
    }

    /// Whether every observed fingerprint agreed with the first.
    pub fn byte_identical(&self) -> bool {
        self.byte_identical
    }

    /// The first run's fingerprint, empty before any observation.
    pub fn fingerprint(&self) -> &str {
        self.fingerprint.as_deref().unwrap_or("")
    }
}

/// Writes the committed artifact on a full run; smoke mode is a
/// pass/fail gate and must never clobber the committed file with a
/// toy-sized snapshot. Exits nonzero when the write fails.
pub fn write_artifact(smoke: bool, path: &str, json: &str) {
    if smoke {
        return;
    }
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
        exit(1);
    }
}

/// Exits nonzero when the sweep diverged. `what` names the fingerprint
/// in the failure message (e.g. "run digest").
pub fn require_byte_identical(sweep: &DeterminismSweep, what: &str) {
    if !sweep.byte_identical() {
        eprintln!("FAIL: {what} changed with worker count — determinism broken");
        exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_tracks_divergence() {
        let mut s = DeterminismSweep::new();
        assert!(s.byte_identical());
        assert!(s.observe("abc"));
        assert!(s.observe("abc"));
        assert!(s.byte_identical());
        assert!(!s.observe("xyz"));
        assert!(!s.byte_identical());
        assert_eq!(s.fingerprint(), "abc");
    }
}
