//! `bolted-bench` — harnesses that regenerate every table and figure of
//! the paper's evaluation (§7). Each `fig*`/`tab*` binary prints the
//! series the corresponding figure plots; `cargo bench` additionally
//! measures the real performance of the implementation itself.

#![forbid(unsafe_code)]

pub mod determinism;
pub mod hotpath;
pub mod phases;

/// Prints a figure banner with the paper reference.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("==============================================================");
}

/// Prints an aligned table: headers + rows of strings.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
    println!();
}

/// Formats a float with fixed precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}
