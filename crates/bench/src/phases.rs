//! Phase breakdown of one provisioning run, reconstructed from the
//! span tree alone (no `ProvisionReport` involved): the observability
//! layer must be able to reproduce Figure 4's boot-time decomposition
//! by itself, or it is not measuring what the paper measures.

use bolted_core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted_firmware::{FirmwareKind, KernelImage};
use bolted_sim::{Sim, Spans};

/// The six instrumented phases of an attested provision, in pipeline
/// order. `quote-verify` is recorded by the verifier, everything else
/// by the tenant orchestration — the span tree stitches them together.
pub const PHASES: [&str; 6] = [
    "power-cycle",
    "firmware",
    "registrar",
    "quote-verify",
    "iscsi-attach",
    "luks-unlock",
];

/// One run's phase decomposition, extracted from spans.
pub struct PhaseBreakdown {
    /// Node that was provisioned.
    pub node: String,
    /// Profile used.
    pub profile: String,
    /// Total wall-clock of the root `tenant/provision` span, seconds.
    pub total_seconds: f64,
    /// `(phase, seconds)` for each of [`PHASES`], in that order.
    pub phases: Vec<(String, f64)>,
    /// Full metrics-registry JSON for the same run.
    pub metrics_json: String,
}

/// Pulls the named phase durations for `node` out of a span recorder.
/// Panics if a phase is missing or still open — for an attested run
/// with disk encryption all six must have closed.
pub fn extract_phases(spans: &Spans, node: &str) -> Vec<(String, f64)> {
    PHASES
        .iter()
        .map(|phase| {
            let rec = spans
                .find(phase, node)
                .unwrap_or_else(|| panic!("span {phase} missing for {node}"));
            let d = rec
                .duration()
                .unwrap_or_else(|| panic!("span {phase} still open for {node}"));
            (phase.to_string(), d.as_secs_f64())
        })
        .collect()
}

/// Provisions one Charlie node (full attestation + LUKS + IPsec) on a
/// fresh cloud and decomposes it from the spans. Deterministic: same
/// output every run.
pub fn charlie_phase_breakdown() -> PhaseBreakdown {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 1,
            firmware: FirmwareKind::LinuxBoot,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz+initrd");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    let profile = SecurityProfile::charlie();
    sim.block_on({
        let (tenant, profile) = (tenant.clone(), profile.clone());
        async move { tenant.provision(node, &profile, golden).await }
    })
    .expect("provisions");

    let name = cloud.hil.node_name(node).expect("name");
    let root = cloud
        .spans
        .find("provision", &name)
        .expect("root provision span");
    assert_eq!(root.attr("outcome"), Some("ok"));
    PhaseBreakdown {
        node: name.clone(),
        profile: profile.name.clone(),
        total_seconds: root.duration().expect("root closed").as_secs_f64(),
        phases: extract_phases(&cloud.spans, &name),
        metrics_json: cloud.metrics.to_json(),
    }
}

impl PhaseBreakdown {
    /// Renders the breakdown (plus metrics) as the JSON the phase
    /// report writes to `results/metrics_phases.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"node\": \"{}\",\n", self.node));
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"total_seconds\": {:?},\n", self.total_seconds));
        out.push_str("  \"phases\": {\n");
        for (i, (phase, secs)) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&format!("    \"{phase}\": {secs:?}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"metrics\": ");
        out.push_str(&self.metrics_json);
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_has_all_six_phases_and_is_deterministic() {
        let a = charlie_phase_breakdown();
        assert_eq!(a.phases.len(), PHASES.len());
        for ((name, secs), expected) in a.phases.iter().zip(PHASES) {
            assert_eq!(name, expected);
            assert!(*secs >= 0.0);
        }
        // Phases are a decomposition: they cannot exceed the total.
        let sum: f64 = a.phases.iter().map(|(_, s)| s).sum();
        assert!(sum <= a.total_seconds, "{sum} > {}", a.total_seconds);
        // The expensive phases actually cost something.
        for probe in ["firmware", "quote-verify", "iscsi-attach"] {
            let (_, secs) = a.phases.iter().find(|(n, _)| n == probe).expect("phase");
            assert!(*secs > 0.0, "{probe} should take time");
        }
        // Same seed, fresh cloud: byte-identical report.
        let b = charlie_phase_breakdown();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_structure_pins_phase_keys() {
        let bd = charlie_phase_breakdown();
        let json = bd.to_json();
        for phase in PHASES {
            assert!(json.contains(&format!("\"{phase}\":")), "missing {phase}");
        }
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("provision_outcomes{profile=charlie-full,outcome=ok}"));
    }
}
