//! Smoke test for the hot-path micro-bench: the kernels must keep their
//! speedups (generous margins — CI boxes are noisy) and the binary must
//! run end to end in `--quick` mode.

use bolted_bench::hotpath;

#[test]
fn quick_run_reports_montgomery_speedup() {
    let records = hotpath::run(true);
    for bench in [
        "rsa_verify_2048",
        "modpow_2048_full_exp",
        "sha256",
        "sector_encrypt",
    ] {
        assert_eq!(
            records.iter().filter(|r| r.bench == bench).count(),
            2,
            "{bench} needs baseline + optimised variants"
        );
    }
    // ISSUE 2 acceptance: >= 5x on 2048-bit RSA verify; assert 3x so a
    // loaded machine does not flake the suite.
    let verify = hotpath::speedup(&records, "rsa_verify_2048").expect("pair");
    assert!(verify >= 3.0, "rsa_verify_2048 speedup {verify:.2}x < 3x");
    let modpow = hotpath::speedup(&records, "modpow_2048_full_exp").expect("pair");
    assert!(modpow >= 3.0, "modpow speedup {modpow:.2}x < 3x");
    // The symmetric kernels must at least not regress.
    for bench in ["sha256", "sector_encrypt"] {
        let s = hotpath::speedup(&records, bench).expect("pair");
        assert!(s >= 0.8, "{bench} regressed: {s:.2}x");
    }
}

#[test]
fn hotpath_binary_emits_json_lines() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hotpath"))
        .arg("--quick")
        .output()
        .expect("hotpath runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.lines().count() >= 10, "expected one line per record");
    for line in stdout.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"bench\":"));
    }
    assert!(stdout.contains("\"speedup\":"));
}
