//! Smoke test for the hot-path micro-bench: the kernels must keep their
//! speedups (generous margins — CI boxes are noisy) and the binary must
//! run end to end in `--quick` and `--smoke` modes.

use bolted_bench::hotpath::{self, Effort};

#[test]
fn quick_run_reports_kernel_speedups() {
    let records = hotpath::run(Effort::Quick);
    for bench in [
        "rsa_verify_2048",
        "modpow_2048_full_exp",
        "sha256",
        "sha256_mb",
        "sector_encrypt",
    ] {
        assert_eq!(
            records.iter().filter(|r| r.bench == bench).count(),
            2,
            "{bench} needs baseline + optimised variants"
        );
    }
    // ISSUE 2 acceptance: >= 5x on 2048-bit RSA verify; assert 3x so a
    // loaded machine does not flake the suite.
    let verify = hotpath::speedup(&records, "rsa_verify_2048").expect("pair");
    assert!(verify >= 3.0, "rsa_verify_2048 speedup {verify:.2}x < 3x");
    let modpow = hotpath::speedup(&records, "modpow_2048_full_exp").expect("pair");
    assert!(modpow >= 3.0, "modpow speedup {modpow:.2}x < 3x");
    // Single-stream SHA-256 must at least not regress. In debug builds
    // the comparison is meaningless (the library path is layered for
    // zero-copy streaming and relies on inlining the debug codegen
    // never does), so only check that it ran.
    let s = hotpath::speedup(&records, "sha256").expect("pair");
    let sha_floor = if cfg!(debug_assertions) { 0.2 } else { 0.8 };
    assert!(s >= sha_floor, "sha256 regressed: {s:.2}x < {sha_floor}x");
    // ISSUE 7 acceptance: multi-buffer >= 3x, wide sectors >= 2.5x on
    // the recorded full (release) run. Assert looser floors here for
    // noisy boxes, and only no-regression in debug builds — the wide
    // kernels rely on autovectorisation that debug codegen never does.
    let (mb_floor, sect_floor) = if cfg!(debug_assertions) {
        (0.2, 0.2)
    } else {
        (2.0, 1.5)
    };
    let mb = hotpath::speedup(&records, "sha256_mb").expect("pair");
    assert!(mb >= mb_floor, "sha256_mb speedup {mb:.2}x < {mb_floor}x");
    let sect = hotpath::speedup(&records, "sector_encrypt").expect("pair");
    assert!(
        sect >= sect_floor,
        "sector_encrypt speedup {sect:.2}x < {sect_floor}x"
    );
}

#[test]
fn smoke_effort_runs_every_bench() {
    // The verify gate runs this tier: it must stay cheap but still
    // produce both variants of every bench.
    let records = hotpath::run(Effort::Smoke);
    let benches: std::collections::BTreeSet<_> = records.iter().map(|r| r.bench.as_str()).collect();
    assert_eq!(benches.len(), 5, "all five benches present: {benches:?}");
    for r in &records {
        assert!(r.ns_per_op > 0.0, "{}:{} timed nothing", r.bench, r.variant);
    }
}

#[test]
fn hotpath_binary_emits_json_lines() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hotpath"))
        .arg("--smoke")
        .output()
        .expect("hotpath runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.lines().count() >= 10, "expected one line per record");
    for line in stdout.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"bench\":"));
    }
    assert!(stdout.contains("\"speedup\":"));
}
