//! Link-level timing model: bandwidth, propagation latency, MTU framing.

use bolted_sim::SimDuration;

/// Per-packet protocol overhead in bytes (Ethernet + IP + TCP headers,
/// preamble and inter-frame gap), without IPsec.
pub const PLAIN_HEADER_BYTES: u64 = 78;

/// Additional per-packet overhead for ESP tunnel mode (outer IP header,
/// ESP header, IV, padding and ICV) — matches Strongswan's AES-GCM
/// tunnel-mode overhead to within a few bytes.
pub const ESP_OVERHEAD_BYTES: u64 = 73;

/// A point-to-point link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Raw bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
    /// Maximum transmission unit in bytes (IP packet size).
    pub mtu: u64,
}

impl LinkModel {
    /// A 10 GbE datacenter link with standard frames — the paper's fabric.
    pub fn ten_gbe() -> Self {
        LinkModel {
            bandwidth_bps: 10e9,
            latency: SimDuration::from_micros(50),
            mtu: 1500,
        }
    }

    /// Same link with jumbo frames (the paper's tuned configuration).
    pub fn ten_gbe_jumbo() -> Self {
        LinkModel {
            mtu: 9000,
            ..Self::ten_gbe()
        }
    }

    /// A 1 GbE management network link.
    pub fn one_gbe() -> Self {
        LinkModel {
            bandwidth_bps: 1e9,
            latency: SimDuration::from_micros(100),
            mtu: 1500,
        }
    }

    /// Maximum payload bytes per packet given `extra_overhead` consumed
    /// inside the MTU (e.g. ESP).
    ///
    /// # Panics
    ///
    /// Panics if the overhead leaves no room for payload.
    pub fn mss(&self, extra_overhead: u64) -> u64 {
        // 40 bytes of the MTU go to inner IP+TCP headers.
        let inner = 40 + extra_overhead;
        assert!(self.mtu > inner, "MTU too small for headers");
        self.mtu - inner
    }

    /// Number of packets needed for `payload_bytes`.
    pub fn packets_for(&self, payload_bytes: u64, extra_overhead: u64) -> u64 {
        payload_bytes.div_ceil(self.mss(extra_overhead)).max(1)
    }

    /// Total wire bytes for a payload (payload + per-packet headers).
    pub fn wire_bytes(&self, payload_bytes: u64, extra_overhead: u64) -> u64 {
        let pkts = self.packets_for(payload_bytes, extra_overhead);
        payload_bytes + pkts * (PLAIN_HEADER_BYTES + extra_overhead)
    }

    /// Pure serialisation time for a payload at line rate.
    pub fn serialize_time(&self, payload_bytes: u64, extra_overhead: u64) -> SimDuration {
        let bits = self.wire_bytes(payload_bytes, extra_overhead) as f64 * 8.0;
        SimDuration::from_secs_f64(bits / self.bandwidth_bps)
    }

    /// Effective goodput in bits per second for large transfers,
    /// ignoring latency (line-rate bound).
    pub fn goodput_bps(&self, extra_overhead: u64) -> f64 {
        let mss = self.mss(extra_overhead) as f64;
        let per_pkt = mss + (PLAIN_HEADER_BYTES + extra_overhead) as f64;
        self.bandwidth_bps * mss / per_pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mss_accounts_for_headers() {
        let l = LinkModel::ten_gbe();
        assert_eq!(l.mss(0), 1460);
        assert_eq!(l.mss(ESP_OVERHEAD_BYTES), 1460 - 73);
        assert_eq!(LinkModel::ten_gbe_jumbo().mss(0), 8960);
    }

    #[test]
    fn packet_count_rounds_up() {
        let l = LinkModel::ten_gbe();
        assert_eq!(l.packets_for(1, 0), 1);
        assert_eq!(l.packets_for(1460, 0), 1);
        assert_eq!(l.packets_for(1461, 0), 2);
        assert_eq!(l.packets_for(0, 0), 1, "zero-byte send still one packet");
    }

    #[test]
    fn serialize_time_scales_linearly() {
        let l = LinkModel::ten_gbe();
        let t1 = l.serialize_time(1_000_000, 0);
        let t2 = l.serialize_time(2_000_000, 0);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn goodput_below_line_rate() {
        let l = LinkModel::ten_gbe();
        let g = l.goodput_bps(0);
        assert!(g < 10e9);
        assert!(g > 9.3e9, "standard frames ~94% efficient, got {g}");
        // Jumbo frames are more efficient.
        assert!(LinkModel::ten_gbe_jumbo().goodput_bps(0) > g);
    }

    #[test]
    fn esp_overhead_reduces_goodput() {
        let l = LinkModel::ten_gbe();
        assert!(l.goodput_bps(ESP_OVERHEAD_BYTES) < l.goodput_bps(0));
        // Overhead hurts small MTUs relatively more.
        let jumbo = LinkModel::ten_gbe_jumbo();
        let loss_1500 = 1.0 - l.goodput_bps(ESP_OVERHEAD_BYTES) / l.goodput_bps(0);
        let loss_9000 = 1.0 - jumbo.goodput_bps(ESP_OVERHEAD_BYTES) / jumbo.goodput_bps(0);
        assert!(loss_1500 > loss_9000);
    }

    #[test]
    #[should_panic(expected = "MTU too small")]
    fn tiny_mtu_panics() {
        let l = LinkModel {
            mtu: 64,
            ..LinkModel::ten_gbe()
        };
        l.mss(ESP_OVERHEAD_BYTES);
    }
}
