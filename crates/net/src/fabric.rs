//! The datacenter network fabric: switches, VLAN-isolated ports, hosts,
//! and timed data transfers.
//!
//! This is the substrate HIL drives: HIL's only privileges are assigning
//! switch ports to VLANs and powering nodes. Frame delivery is enforced
//! *here* — two hosts can exchange traffic only when their access ports
//! carry the same VLAN and their switches are trunk-connected — which is
//! exactly the isolation property tenants rely on (§5, "HIL controls the
//! network switches ... and provides VLAN-based network isolation").

// lint: allow-file(L1-index: switches, hosts and ports live in Vecs
// indexed by ids this module mints and never recycles; an id cannot
// outlive the fabric that created it, so indexing is total)

use bolted_sim::lock;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use bolted_crypto::cost::CipherCost;
use bolted_sim::fault::{ops, Faults};
use bolted_sim::{Metrics, OpGate, Resource, Sim, SimDuration};

use crate::link::{LinkModel, ESP_OVERHEAD_BYTES};

/// VLAN identifier (802.1Q tag).
pub type VlanId = u16;

/// Handle to a host attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Handle to a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub usize);

/// Errors from fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Host is not attached to any switch port.
    NotAttached,
    /// Port exists on no switch / port index out of range.
    NoSuchPort,
    /// Port already has a host attached.
    PortBusy,
    /// The two endpoints are not on a common VLAN: traffic is dropped.
    IsolationViolation,
    /// Same VLAN but no trunk path between the switches.
    NoRoute,
    /// The switch's management plane did not answer (transient; injected
    /// by the fault plan). Retry the operation.
    SwitchUnreachable,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NotAttached => write!(f, "host not attached to a switch port"),
            NetError::NoSuchPort => write!(f, "no such switch port"),
            NetError::PortBusy => write!(f, "switch port already occupied"),
            NetError::IsolationViolation => write!(f, "VLAN isolation violation"),
            NetError::NoRoute => write!(f, "no trunk path between switches"),
            NetError::SwitchUnreachable => write!(f, "switch management plane unreachable"),
        }
    }
}

impl std::error::Error for NetError {}

/// A message delivered to a host mailbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending host.
    pub from: HostId,
    /// Payload exactly as it crossed the wire (ciphertext if the sender
    /// sealed it).
    pub payload: Vec<u8>,
}

/// Parameters of a timed transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferSpec {
    /// Whether ESP encapsulation overhead applies.
    pub esp: bool,
    /// CPU cost model for encryption (use [`CipherCost::FREE`] for none).
    pub cipher: CipherCost,
    /// Chunk size for interleaving concurrent flows, bytes.
    pub chunk_bytes: u64,
    /// Traffic shaping: pad every message up to a multiple of this many
    /// bytes (`None` = no shaping).
    pub pad_to: Option<u64>,
}

impl TransferSpec {
    /// Plain, unencrypted transfer.
    pub fn plain() -> Self {
        TransferSpec {
            esp: false,
            cipher: CipherCost::FREE,
            chunk_bytes: 1 << 20,
            pad_to: None,
        }
    }

    /// IPsec transfer with the given cipher cost model.
    pub fn ipsec(cipher: CipherCost) -> Self {
        TransferSpec {
            esp: true,
            cipher,
            chunk_bytes: 1 << 20,
            pad_to: None,
        }
    }

    /// Adds traffic shaping: every message is padded up to a multiple of
    /// `bucket` bytes, so an observer cannot distinguish payload sizes
    /// (§6: tenants can "shape their traffic to resist traffic analysis
    /// from the provider"). Costs bandwidth proportional to the padding.
    pub fn shaped(mut self, bucket: u64) -> Self {
        self.pad_to = Some(bucket.max(1));
        self
    }

    /// Bytes that actually cross the wire for a `len`-byte payload.
    pub fn padded_len(&self, len: u64) -> u64 {
        match self.pad_to {
            Some(bucket) => len.div_ceil(bucket).max(1) * bucket,
            None => len,
        }
    }
}

struct Port {
    vlan: Option<VlanId>,
    host: Option<usize>,
}

struct Switch {
    #[allow(dead_code)]
    name: String,
    ports: Vec<Port>,
}

struct HostState {
    name: String,
    link: LinkModel,
    attached: Option<(usize, usize)>,
    mailbox: VecDeque<Message>,
    mailbox_event: bolted_sim::Event,
    bytes_sent: u64,
    bytes_received: u64,
}

struct FabricInner {
    switches: Vec<Switch>,
    hosts: Vec<HostState>,
    trunks: Vec<(usize, usize)>,
    taps: HashMap<VlanId, Vec<Vec<u8>>>,
    tap_enabled: bool,
    violations: u64,
    gate: OpGate,
}

/// The shared network fabric.
#[derive(Clone)]
pub struct Fabric {
    sim: Sim,
    inner: Arc<Mutex<FabricInner>>,
    tx_locks: Arc<Mutex<Vec<Resource>>>,
    rx_locks: Arc<Mutex<Vec<Resource>>>,
}

impl Fabric {
    /// Creates an empty fabric on the given simulation.
    pub fn new(sim: &Sim) -> Self {
        Fabric {
            sim: sim.clone(),
            inner: Arc::new(Mutex::new(FabricInner {
                switches: Vec::new(),
                hosts: Vec::new(),
                trunks: Vec::new(),
                taps: HashMap::new(),
                tap_enabled: false,
                violations: 0,
                gate: OpGate::disabled(),
            })),
            tx_locks: Arc::new(Mutex::new(Vec::new())),
            rx_locks: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Adds a switch with `ports` access ports.
    pub fn add_switch(&self, name: impl Into<String>, ports: usize) -> SwitchId {
        let mut inner = lock(&self.inner);
        let id = inner.switches.len();
        inner.switches.push(Switch {
            name: name.into(),
            ports: (0..ports)
                .map(|_| Port {
                    vlan: None,
                    host: None,
                })
                .collect(),
        });
        SwitchId(id)
    }

    /// Trunks two switches together (all VLANs carried).
    pub fn trunk(&self, a: SwitchId, b: SwitchId) {
        lock(&self.inner).trunks.push((a.0, b.0));
    }

    /// Registers a host NIC (not yet attached to any port).
    pub fn add_host(&self, name: impl Into<String>, link: LinkModel) -> HostId {
        let mut inner = lock(&self.inner);
        let id = inner.hosts.len();
        inner.hosts.push(HostState {
            name: name.into(),
            link,
            attached: None,
            mailbox: VecDeque::new(),
            mailbox_event: bolted_sim::Event::new(),
            bytes_sent: 0,
            bytes_received: 0,
        });
        lock(&self.tx_locks).push(Resource::new(&self.sim, 1));
        lock(&self.rx_locks).push(Resource::new(&self.sim, 1));
        HostId(id)
    }

    /// Cables a host NIC into a switch port.
    pub fn attach(&self, host: HostId, switch: SwitchId, port: usize) -> Result<(), NetError> {
        let mut inner = lock(&self.inner);
        let sw = inner.switches.get(switch.0).ok_or(NetError::NoSuchPort)?;
        let p = sw.ports.get(port).ok_or(NetError::NoSuchPort)?;
        if p.host.is_some() {
            return Err(NetError::PortBusy);
        }
        inner.switches[switch.0].ports[port].host = Some(host.0);
        inner.hosts[host.0].attached = Some((switch.0, port));
        Ok(())
    }

    /// Uncables a host.
    pub fn detach(&self, host: HostId) {
        let mut inner = lock(&self.inner);
        if let Some((sw, port)) = inner.hosts[host.0].attached.take() {
            inner.switches[sw].ports[port].host = None;
        }
    }

    /// Installs a fault-injection handle; subsequent control-plane calls
    /// (VLAN programming) consult it.
    pub fn set_faults(&self, faults: &Faults) {
        lock(&self.inner).gate.set_faults(faults);
    }

    /// Attaches a metrics registry; VLAN programming is counted as
    /// `switch_vlan_sets{target=<attached host>}`.
    pub fn set_metrics(&self, metrics: &Metrics) {
        lock(&self.inner).gate.set_metrics(metrics);
    }

    /// Sets (or clears) the access VLAN of a switch port.
    /// This is HIL's core privileged operation.
    pub fn set_port_vlan(
        &self,
        switch: SwitchId,
        port: usize,
        vlan: Option<VlanId>,
    ) -> Result<(), NetError> {
        let mut inner = lock(&self.inner);
        if inner.gate.is_live() {
            // Key the fault stream by the attached host's name so chaos
            // plans can target "that node's switch port" symbolically.
            let target = inner
                .switches
                .get(switch.0)
                .and_then(|sw| sw.ports.get(port))
                .and_then(|p| p.host)
                .map(|h| inner.hosts[h].name.clone())
                .unwrap_or_else(|| format!("sw{}:p{}", switch.0, port));
            inner
                .gate
                .tap("switch_vlan_sets", ops::SWITCH_SET_VLAN, &target)
                .map_err(|_| NetError::SwitchUnreachable)?;
        }
        let sw = inner
            .switches
            .get_mut(switch.0)
            .ok_or(NetError::NoSuchPort)?;
        let p = sw.ports.get_mut(port).ok_or(NetError::NoSuchPort)?;
        p.vlan = vlan;
        Ok(())
    }

    /// Convenience: sets the VLAN of the port a host is attached to.
    pub fn set_host_vlan(&self, host: HostId, vlan: Option<VlanId>) -> Result<(), NetError> {
        let (sw, port) = lock(&self.inner)
            .hosts
            .get(host.0)
            .and_then(|h| h.attached)
            .ok_or(NetError::NotAttached)?;
        self.set_port_vlan(SwitchId(sw), port, vlan)
    }

    /// The VLAN a host currently sits on.
    pub fn host_vlan(&self, host: HostId) -> Option<VlanId> {
        let inner = lock(&self.inner);
        let (sw, port) = inner.hosts.get(host.0)?.attached?;
        inner.switches[sw].ports[port].vlan
    }

    /// The host's configured link model.
    pub fn host_link(&self, host: HostId) -> LinkModel {
        lock(&self.inner).hosts[host.0].link
    }

    /// Host display name.
    pub fn host_name(&self, host: HostId) -> String {
        lock(&self.inner).hosts[host.0].name.clone()
    }

    /// Bytes sent / received by a host so far.
    pub fn host_traffic(&self, host: HostId) -> (u64, u64) {
        let h = &lock(&self.inner).hosts[host.0];
        (h.bytes_sent, h.bytes_received)
    }

    /// Number of delivery attempts dropped by VLAN isolation.
    pub fn isolation_violations(&self) -> u64 {
        lock(&self.inner).violations
    }

    /// Enables wire taps: every payload crossing each VLAN is recorded
    /// (models an eavesdropping provider or tenant).
    pub fn enable_taps(&self) {
        lock(&self.inner).tap_enabled = true;
    }

    /// Returns all payloads observed on `vlan` since taps were enabled.
    pub fn tapped(&self, vlan: VlanId) -> Vec<Vec<u8>> {
        lock(&self.inner)
            .taps
            .get(&vlan)
            .cloned()
            .unwrap_or_default()
    }

    /// Checks L2 reachability: both attached, same (non-None) VLAN, and a
    /// trunk path between their switches. Returns the common VLAN.
    pub fn path(&self, from: HostId, to: HostId) -> Result<VlanId, NetError> {
        let inner = lock(&self.inner);
        let (sw_a, p_a) = inner
            .hosts
            .get(from.0)
            .and_then(|h| h.attached)
            .ok_or(NetError::NotAttached)?;
        let (sw_b, p_b) = inner
            .hosts
            .get(to.0)
            .and_then(|h| h.attached)
            .ok_or(NetError::NotAttached)?;
        let vlan_a = inner.switches[sw_a].ports[p_a].vlan;
        let vlan_b = inner.switches[sw_b].ports[p_b].vlan;
        match (vlan_a, vlan_b) {
            (Some(a), Some(b)) if a == b => {
                if Self::reachable(&inner, sw_a, sw_b) {
                    Ok(a)
                } else {
                    Err(NetError::NoRoute)
                }
            }
            _ => Err(NetError::IsolationViolation),
        }
    }

    fn reachable(inner: &FabricInner, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let n = inner.switches.len();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([a]);
        seen[a] = true;
        while let Some(cur) = queue.pop_front() {
            for &(x, y) in &inner.trunks {
                let next = if x == cur {
                    y
                } else if y == cur {
                    x
                } else {
                    continue;
                };
                if next == b {
                    return true;
                }
                if !seen[next] {
                    seen[next] = true;
                    queue.push_back(next);
                }
            }
        }
        false
    }

    /// Transfers `bytes` of payload from `from` to `to`, charging virtual
    /// time for serialisation, encryption, and propagation. Returns the
    /// total elapsed duration.
    pub async fn transfer(
        &self,
        from: HostId,
        to: HostId,
        bytes: u64,
        spec: TransferSpec,
    ) -> Result<SimDuration, NetError> {
        let start = self.sim.now();
        let vlan = match self.path(from, to) {
            Ok(v) => v,
            Err(e) => {
                if matches!(e, NetError::IsolationViolation) {
                    lock(&self.inner).violations += 1;
                }
                return Err(e);
            }
        };
        let _ = vlan;
        let (link, latency) = {
            let inner = lock(&self.inner);
            let la = inner.hosts[from.0].link;
            let lb = inner.hosts[to.0].link;
            // Bottleneck link governs serialisation; worst latency applies.
            let link = if la.bandwidth_bps <= lb.bandwidth_bps {
                la
            } else {
                lb
            };
            (link, la.latency.max(lb.latency))
        };
        let overhead = if spec.esp { ESP_OVERHEAD_BYTES } else { 0 };
        let tx = lock(&self.tx_locks)[from.0].clone();
        let rx = lock(&self.rx_locks)[to.0].clone();
        let wire_payload = spec.padded_len(bytes);
        let mut remaining = wire_payload;
        loop {
            let chunk = remaining.min(spec.chunk_bytes.max(1));
            let wire = link.serialize_time(chunk, overhead);
            let pkts = link.packets_for(chunk, overhead);
            let cipher_ns =
                spec.cipher.per_op_ns * pkts as f64 + spec.cipher.per_byte_ns * chunk as f64;
            let service = wire.max(SimDuration::from_secs_f64(cipher_ns / 1e9));
            let _tx_permit = tx.acquire().await;
            let _rx_permit = rx.acquire().await;
            self.sim.sleep(service).await;
            if remaining <= chunk {
                break;
            }
            remaining -= chunk;
        }
        self.sim.sleep(latency).await;
        {
            let mut inner = lock(&self.inner);
            inner.hosts[from.0].bytes_sent += wire_payload;
            inner.hosts[to.0].bytes_received += wire_payload;
        }
        Ok(self.sim.now().since(start))
    }

    /// Sends a concrete payload as a message: charges transfer time, then
    /// delivers the bytes to the destination mailbox. The payload is
    /// recorded on the VLAN tap exactly as sent — callers that want
    /// confidentiality must seal it (e.g. with [`crate::IpsecTunnel`])
    /// before calling.
    pub async fn send_msg(
        &self,
        from: HostId,
        to: HostId,
        payload: Vec<u8>,
        spec: TransferSpec,
    ) -> Result<(), NetError> {
        let vlan = self.path(from, to)?;
        self.transfer(from, to, payload.len() as u64, spec).await?;
        let mut inner = lock(&self.inner);
        if inner.tap_enabled {
            // The tap sees the padded wire frame, not the logical payload.
            let mut frame = payload.clone();
            frame.resize(spec.padded_len(payload.len() as u64) as usize, 0);
            inner.taps.entry(vlan).or_default().push(frame);
        }
        inner.hosts[to.0]
            .mailbox
            .push_back(Message { from, payload });
        let ev = inner.hosts[to.0].mailbox_event.clone();
        drop(inner);
        // Wake any receiver; re-arm for the next message.
        ev.set();
        Ok(())
    }

    /// Receives the next mailbox message for `host`, waiting if empty.
    pub async fn recv_msg(&self, host: HostId) -> Message {
        loop {
            let ev = {
                let mut inner = lock(&self.inner);
                if let Some(msg) = inner.hosts[host.0].mailbox.pop_front() {
                    return msg;
                }
                // Replace the event so set() on the old one wakes us once.
                let fresh = bolted_sim::Event::new();
                inner.hosts[host.0].mailbox_event = fresh.clone();
                fresh
            };
            ev.wait().await;
        }
    }

    /// Non-blocking mailbox poll.
    pub fn try_recv_msg(&self, host: HostId) -> Option<Message> {
        lock(&self.inner).hosts[host.0].mailbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Sim, Fabric, HostId, HostId) {
        let sim = Sim::new();
        let fabric = Fabric::new(&sim);
        let sw = fabric.add_switch("tor-1", 48);
        let a = fabric.add_host("node-a", LinkModel::ten_gbe());
        let b = fabric.add_host("node-b", LinkModel::ten_gbe());
        fabric.attach(a, sw, 0).expect("attach a");
        fabric.attach(b, sw, 1).expect("attach b");
        (sim, fabric, a, b)
    }

    #[test]
    fn same_vlan_hosts_can_talk() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(100)).expect("vlan");
        fabric.set_host_vlan(b, Some(100)).expect("vlan");
        let d = sim.block_on({
            let f = fabric.clone();
            async move { f.transfer(a, b, 1_000_000, TransferSpec::plain()).await }
        });
        let d = d.expect("same vlan transfers");
        assert!(d > SimDuration::ZERO);
        assert_eq!(fabric.host_traffic(a).0, 1_000_000);
        assert_eq!(fabric.host_traffic(b).1, 1_000_000);
    }

    #[test]
    fn cross_vlan_traffic_dropped() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(100)).expect("vlan");
        fabric.set_host_vlan(b, Some(200)).expect("vlan");
        let r = sim.block_on({
            let f = fabric.clone();
            async move { f.transfer(a, b, 1000, TransferSpec::plain()).await }
        });
        assert_eq!(r, Err(NetError::IsolationViolation));
        assert_eq!(fabric.isolation_violations(), 1);
    }

    #[test]
    fn unassigned_vlan_is_isolated() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(100)).expect("vlan");
        // b has no VLAN at all.
        let r = sim.block_on({
            let f = fabric.clone();
            async move { f.transfer(a, b, 1000, TransferSpec::plain()).await }
        });
        assert_eq!(r, Err(NetError::IsolationViolation));
    }

    #[test]
    fn detached_host_unreachable() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(1)).expect("vlan");
        fabric.set_host_vlan(b, Some(1)).expect("vlan");
        fabric.detach(b);
        let r = sim.block_on({
            let f = fabric.clone();
            async move { f.transfer(a, b, 1000, TransferSpec::plain()).await }
        });
        assert_eq!(r, Err(NetError::NotAttached));
    }

    #[test]
    fn trunked_switches_route_same_vlan() {
        let sim = Sim::new();
        let fabric = Fabric::new(&sim);
        let s1 = fabric.add_switch("tor-1", 4);
        let s2 = fabric.add_switch("tor-2", 4);
        let s3 = fabric.add_switch("spine", 4);
        fabric.trunk(s1, s3);
        fabric.trunk(s3, s2);
        let a = fabric.add_host("a", LinkModel::ten_gbe());
        let b = fabric.add_host("b", LinkModel::ten_gbe());
        fabric.attach(a, s1, 0).expect("attach");
        fabric.attach(b, s2, 0).expect("attach");
        fabric.set_host_vlan(a, Some(7)).expect("vlan");
        fabric.set_host_vlan(b, Some(7)).expect("vlan");
        assert_eq!(fabric.path(a, b), Ok(7));
        // Remove trunks: no route.
        let fabric2 = Fabric::new(&sim);
        let s1 = fabric2.add_switch("tor-1", 4);
        let s2 = fabric2.add_switch("tor-2", 4);
        let a = fabric2.add_host("a", LinkModel::ten_gbe());
        let b = fabric2.add_host("b", LinkModel::ten_gbe());
        fabric2.attach(a, s1, 0).expect("attach");
        fabric2.attach(b, s2, 0).expect("attach");
        fabric2.set_host_vlan(a, Some(7)).expect("vlan");
        fabric2.set_host_vlan(b, Some(7)).expect("vlan");
        assert_eq!(fabric2.path(a, b), Err(NetError::NoRoute));
    }

    #[test]
    fn vlan_programming_respects_fault_plan() {
        use bolted_sim::fault::{ops, FaultPlan, FaultSpec, Faults};
        let (_sim, fabric, a, b) = setup();
        let faults = Faults::new(FaultPlan::seeded(1).with_target(
            ops::SWITCH_SET_VLAN,
            "node-a",
            FaultSpec::flaky(2),
        ));
        fabric.set_faults(&faults);
        // node-a's port flaps twice, then recovers.
        assert_eq!(
            fabric.set_host_vlan(a, Some(100)),
            Err(NetError::SwitchUnreachable)
        );
        assert_eq!(
            fabric.set_host_vlan(a, Some(100)),
            Err(NetError::SwitchUnreachable)
        );
        assert_eq!(fabric.set_host_vlan(a, Some(100)), Ok(()));
        // Untargeted ports are unaffected throughout.
        assert_eq!(fabric.set_host_vlan(b, Some(100)), Ok(()));
        assert_eq!(faults.injected(ops::SWITCH_SET_VLAN), 2);
    }

    #[test]
    fn port_conflicts_rejected() {
        let sim = Sim::new();
        let fabric = Fabric::new(&sim);
        let sw = fabric.add_switch("tor", 1);
        let a = fabric.add_host("a", LinkModel::ten_gbe());
        let b = fabric.add_host("b", LinkModel::ten_gbe());
        fabric.attach(a, sw, 0).expect("attach");
        assert_eq!(fabric.attach(b, sw, 0), Err(NetError::PortBusy));
        assert_eq!(fabric.attach(b, sw, 5), Err(NetError::NoSuchPort));
    }

    #[test]
    fn transfer_time_matches_line_rate() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(1)).expect("vlan");
        fabric.set_host_vlan(b, Some(1)).expect("vlan");
        let bytes = 1_000_000_000u64; // 1 GB
        let d = sim
            .block_on({
                let f = fabric.clone();
                async move { f.transfer(a, b, bytes, TransferSpec::plain()).await }
            })
            .expect("transfers");
        // 1 GB over ~9.4 Gbit/s goodput ≈ 0.85 s.
        let secs = d.as_secs_f64();
        assert!((0.8..0.95).contains(&secs), "took {secs}s");
    }

    #[test]
    fn ipsec_transfer_slower_than_plain() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(1)).expect("vlan");
        fabric.set_host_vlan(b, Some(1)).expect("vlan");
        let bytes = 100_000_000u64;
        let f2 = fabric.clone();
        let plain = sim
            .block_on(async move { f2.transfer(a, b, bytes, TransferSpec::plain()).await })
            .expect("plain");
        let f3 = fabric.clone();
        let enc = sim
            .block_on(async move {
                f3.transfer(
                    a,
                    b,
                    bytes,
                    TransferSpec::ipsec(bolted_crypto::CipherSuite::AesNi.default_cost()),
                )
                .await
            })
            .expect("ipsec");
        assert!(
            enc.as_secs_f64() > 1.5 * plain.as_secs_f64(),
            "ipsec {} vs plain {}",
            enc,
            plain
        );
    }

    #[test]
    fn concurrent_flows_share_nic() {
        let (sim, fabric, a, b) = setup();
        let sw = SwitchId(0);
        let c = fabric.add_host("node-c", LinkModel::ten_gbe());
        fabric.attach(c, sw, 2).expect("attach");
        for h in [a, b, c] {
            fabric.set_host_vlan(h, Some(1)).expect("vlan");
        }
        // Two flows into b: each alone would take ~0.085s; sharing b's rx
        // they must take ~2x.
        let bytes = 100_000_000u64;
        let f1 = fabric.clone();
        let h1 = sim.spawn(async move { f1.transfer(a, b, bytes, TransferSpec::plain()).await });
        let f2 = fabric.clone();
        let h2 = sim.spawn(async move { f2.transfer(c, b, bytes, TransferSpec::plain()).await });
        sim.run();
        let d1 = h1.try_take().expect("done").expect("ok");
        let d2 = h2.try_take().expect("done").expect("ok");
        let slowest = d1.max(d2).as_secs_f64();
        assert!(slowest > 0.14, "sharing should slow the flows: {slowest}");
    }

    #[test]
    fn mailbox_delivery_and_taps() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(1)).expect("vlan");
        fabric.set_host_vlan(b, Some(1)).expect("vlan");
        fabric.enable_taps();
        let f = fabric.clone();
        let got = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let sender = f.clone();
                let h = {
                    let f2 = sender.clone();
                    // Spawn the receive first to exercise blocking recv.
                    let sim_handle = async move { f2.recv_msg(b).await };
                    sim_handle
                };
                sender
                    .send_msg(a, b, b"hello enclave".to_vec(), TransferSpec::plain())
                    .await
                    .expect("sends");
                let msg = h.await;
                let _ = fabric;
                msg
            }
        });
        assert_eq!(got.from, a);
        assert_eq!(got.payload, b"hello enclave");
        let taps = fabric.tapped(1);
        assert_eq!(taps.len(), 1);
        assert_eq!(taps[0], b"hello enclave");
    }

    #[test]
    fn sealed_messages_are_opaque_on_the_tap() {
        let (sim, fabric, a, b) = setup();
        fabric.set_host_vlan(a, Some(1)).expect("vlan");
        fabric.set_host_vlan(b, Some(1)).expect("vlan");
        fabric.enable_taps();
        let (mut ta, mut tb) = crate::ipsec::tunnel_pair(b"psk", bolted_crypto::CipherSuite::AesNi);
        let sealed = ta.seal(b"the secret plan").expect("seals");
        let f = fabric.clone();
        sim.block_on(async move {
            f.send_msg(a, b, sealed, TransferSpec::ipsec(CipherCost::FREE))
                .await
                .expect("sends");
        });
        let taps = fabric.tapped(1);
        assert_eq!(taps.len(), 1);
        assert!(!taps[0].windows(6).any(|w| w == b"secret"));
        // But the legitimate receiver opens it.
        let msg = fabric.try_recv_msg(b).expect("delivered");
        assert_eq!(tb.open(&msg.payload).expect("opens"), b"the secret plan");
    }
}

#[cfg(test)]
mod shaping_tests {
    use super::*;

    fn setup() -> (Sim, Fabric, HostId, HostId) {
        let sim = Sim::new();
        let fabric = Fabric::new(&sim);
        let sw = fabric.add_switch("tor", 4);
        let a = fabric.add_host("a", crate::link::LinkModel::ten_gbe());
        let b = fabric.add_host("b", crate::link::LinkModel::ten_gbe());
        fabric.attach(a, sw, 0).expect("attach");
        fabric.attach(b, sw, 1).expect("attach");
        fabric.set_host_vlan(a, Some(1)).expect("vlan");
        fabric.set_host_vlan(b, Some(1)).expect("vlan");
        (sim, fabric, a, b)
    }

    #[test]
    fn padded_len_rounds_up_to_bucket() {
        let spec = TransferSpec::plain().shaped(4096);
        assert_eq!(spec.padded_len(1), 4096);
        assert_eq!(spec.padded_len(4096), 4096);
        assert_eq!(spec.padded_len(4097), 8192);
        assert_eq!(spec.padded_len(0), 4096, "even empty sends emit a bucket");
        assert_eq!(TransferSpec::plain().padded_len(77), 77);
    }

    #[test]
    fn shaping_hides_message_sizes_from_taps() {
        let (sim, fabric, a, b) = setup();
        fabric.enable_taps();
        let spec = TransferSpec::plain().shaped(8192);
        sim.block_on({
            let fabric = fabric.clone();
            async move {
                for msg in [b"hi".to_vec(), vec![7u8; 5000], vec![9u8; 100]] {
                    fabric.send_msg(a, b, msg, spec).await.expect("sends");
                }
            }
        });
        let frames = fabric.tapped(1);
        assert_eq!(frames.len(), 3);
        assert!(
            frames.iter().all(|f| f.len() == 8192),
            "all frames identical on the wire: {:?}",
            frames.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shaping_costs_bandwidth() {
        let (sim, fabric, a, b) = setup();
        let plain = sim
            .block_on({
                let f = fabric.clone();
                async move { f.transfer(a, b, 100, TransferSpec::plain()).await }
            })
            .expect("plain");
        let sim2 = Sim::new();
        let (sim2, fabric2, a2, b2) = {
            let _ = sim2;
            setup()
        };
        let shaped = sim2
            .block_on({
                let f = fabric2.clone();
                async move {
                    f.transfer(a2, b2, 100, TransferSpec::plain().shaped(1 << 20))
                        .await
                }
            })
            .expect("shaped");
        assert!(
            shaped.as_secs_f64() > 2.0 * plain.as_secs_f64(),
            "padding to 1 MiB must cost real time: {plain} vs {shaped}"
        );
    }
}
