//! An iperf-style throughput measurement harness (paper Figure 3b).

// lint: allow-file(L1-panic: standalone measurement harness; it builds
// its own two-host fixture, so a failed attach/vlan call is a programming
// error in this file, not a runtime condition)

use bolted_crypto::cost::CipherSuite;
use bolted_sim::Sim;

use crate::fabric::{Fabric, HostId, NetError, TransferSpec};
use crate::link::ESP_OVERHEAD_BYTES;

/// Result of one iperf run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IperfResult {
    /// Application payload moved, bytes.
    pub bytes: u64,
    /// Elapsed virtual time, seconds.
    pub seconds: f64,
    /// Goodput in gigabits per second.
    pub gbps: f64,
}

/// Runs a memory-to-memory transfer of `bytes` between two hosts and
/// reports goodput, with optional IPsec.
pub async fn iperf(
    fabric: &Fabric,
    from: HostId,
    to: HostId,
    bytes: u64,
    suite: CipherSuite,
) -> Result<IperfResult, NetError> {
    let spec = match suite {
        CipherSuite::None => TransferSpec::plain(),
        s => TransferSpec::ipsec(s.default_cost()),
    };
    let d = fabric.transfer(from, to, bytes, spec).await?;
    let seconds = d.as_secs_f64();
    Ok(IperfResult {
        bytes,
        seconds,
        gbps: bytes as f64 * 8.0 / seconds / 1e9,
    })
}

/// Convenience wrapper that spins up a fresh simulation for one
/// measurement (what the figure harness calls in a loop).
pub fn iperf_standalone(
    link: crate::link::LinkModel,
    bytes: u64,
    suite: CipherSuite,
) -> IperfResult {
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let sw = fabric.add_switch("sw", 2);
    let a = fabric.add_host("iperf-client", link);
    let b = fabric.add_host("iperf-server", link);
    fabric.attach(a, sw, 0).expect("attach");
    fabric.attach(b, sw, 1).expect("attach");
    fabric.set_host_vlan(a, Some(1)).expect("vlan");
    fabric.set_host_vlan(b, Some(1)).expect("vlan");
    let f = fabric.clone();
    sim.block_on(async move { iperf(&f, a, b, bytes, suite).await })
        .expect("standalone iperf cannot be isolated")
}

/// Analytic upper bound on goodput for a suite over a link — used by
/// tests to sanity-check the simulated numbers.
pub fn analytic_goodput_gbps(link: crate::link::LinkModel, suite: CipherSuite) -> f64 {
    match suite {
        CipherSuite::None => link.goodput_bps(0) / 1e9,
        s => {
            let cost = s.default_cost();
            let mss = link.mss(ESP_OVERHEAD_BYTES);
            // Cipher-limited payload rate: one MSS per op_ns(mss).
            let secs_per_pkt = cost.op_ns(mss) / 1e9;
            let cipher_bits_per_sec = mss as f64 * 8.0 / secs_per_pkt;
            link.goodput_bps(ESP_OVERHEAD_BYTES)
                .min(cipher_bits_per_sec)
                / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;

    #[test]
    fn plain_near_line_rate() {
        let r = iperf_standalone(LinkModel::ten_gbe_jumbo(), 1 << 30, CipherSuite::None);
        assert!(r.gbps > 9.3, "jumbo plain got {}", r.gbps);
        let r = iperf_standalone(LinkModel::ten_gbe(), 1 << 30, CipherSuite::None);
        assert!(r.gbps > 9.0, "1500 plain got {}", r.gbps);
    }

    #[test]
    fn ipsec_hw_roughly_half_line_rate() {
        // Paper: "even the best case of HW accelerated encryption and
        // jumbo frames having almost a factor of two degradation".
        let plain = iperf_standalone(LinkModel::ten_gbe_jumbo(), 1 << 30, CipherSuite::None);
        let hw = iperf_standalone(LinkModel::ten_gbe_jumbo(), 1 << 30, CipherSuite::AesNi);
        let ratio = plain.gbps / hw.gbps;
        assert!((1.6..2.6).contains(&ratio), "plain/hw ratio {ratio}");
    }

    #[test]
    fn ipsec_sw_much_slower_than_hw() {
        let hw = iperf_standalone(LinkModel::ten_gbe_jumbo(), 1 << 28, CipherSuite::AesNi);
        let sw = iperf_standalone(LinkModel::ten_gbe_jumbo(), 1 << 28, CipherSuite::AesSw);
        assert!(hw.gbps > 2.0 * sw.gbps, "hw {} sw {}", hw.gbps, sw.gbps);
    }

    #[test]
    fn jumbo_frames_help_ipsec() {
        let j = iperf_standalone(LinkModel::ten_gbe_jumbo(), 1 << 28, CipherSuite::AesNi);
        let s = iperf_standalone(LinkModel::ten_gbe(), 1 << 28, CipherSuite::AesNi);
        assert!(j.gbps > s.gbps, "jumbo {} vs 1500 {}", j.gbps, s.gbps);
    }

    #[test]
    fn simulation_matches_analytic_bound() {
        for suite in [CipherSuite::None, CipherSuite::AesNi, CipherSuite::AesSw] {
            for link in [LinkModel::ten_gbe(), LinkModel::ten_gbe_jumbo()] {
                let analytic = analytic_goodput_gbps(link, suite);
                let simulated = iperf_standalone(link, 1 << 28, suite).gbps;
                let ratio = simulated / analytic;
                assert!(
                    (0.85..1.05).contains(&ratio),
                    "{suite:?} mtu {}: simulated {simulated:.2} vs analytic {analytic:.2}",
                    link.mtu
                );
            }
        }
    }

    #[test]
    fn result_fields_consistent() {
        let r = iperf_standalone(LinkModel::ten_gbe(), 1 << 24, CipherSuite::None);
        let recomputed = r.bytes as f64 * 8.0 / r.seconds / 1e9;
        assert!((r.gbps - recomputed).abs() < 1e-9);
    }
}
