//! `bolted-net` — the datacenter network substrate.
//!
//! Switches with 802.1Q VLAN access ports (the isolation mechanism HIL
//! drives), link models with MTU-aware framing, timed transfers with
//! NIC-level contention, IPsec tunnels (real AEAD on the data path plus
//! AES-NI/software cost models for the timing path), host mailboxes, wire
//! taps for eavesdropping experiments, and an iperf harness reproducing
//! the paper's Figure 3b methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod iperf;
pub mod ipsec;
pub mod link;

pub use fabric::{Fabric, HostId, Message, NetError, SwitchId, TransferSpec, VlanId};
pub use iperf::{analytic_goodput_gbps, iperf, iperf_standalone, IperfResult};
pub use ipsec::{tunnel_pair, IpsecError, IpsecTunnel};
pub use link::{LinkModel, ESP_OVERHEAD_BYTES, PLAIN_HEADER_BYTES};
