//! IPsec-style tunnels: real authenticated encryption on the packet data
//! path plus a calibrated CPU cost model for the timing path.
//!
//! Matches the paper's configuration (§7.1): Strongswan host-to-host
//! tunnel mode, AES-256-GCM, pre-shared key. Here the PSK is bootstrapped
//! by Keylime during attestation and bound to the node, exactly as the
//! paper describes.

// lint: allow-file(L1-index: ESP framing slices fixed-size buffers —
// 64-byte HKDF output, 8-byte sequence prefixes checked against
// packet.len() before use — with compile-time-constant bounds)

use bolted_crypto::aead::{Aead, AeadError};
use bolted_crypto::chacha20::Key;
use bolted_crypto::cost::{CipherCost, CipherSuite};
use bolted_crypto::hmac::hkdf;

/// Errors from tunnel processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpsecError {
    /// Authentication failed (tamper, wrong key, wrong SA).
    Auth,
    /// Replayed or reordered-beyond-window sequence number.
    Replay,
    /// Packet too short.
    Malformed,
    /// The tunnel's keys were revoked.
    Revoked,
}

impl std::fmt::Display for IpsecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpsecError::Auth => write!(f, "ESP authentication failed"),
            IpsecError::Replay => write!(f, "replayed sequence number"),
            IpsecError::Malformed => write!(f, "malformed ESP packet"),
            IpsecError::Revoked => write!(f, "security association revoked"),
        }
    }
}

impl std::error::Error for IpsecError {}

/// One direction of a security association.
struct SaState {
    next_seq: u64,
    highest_received: u64,
}

/// An IPsec tunnel between two endpoints sharing a PSK.
///
/// Each endpoint constructs its own `IpsecTunnel` from the PSK and its
/// role; sequence numbers are tracked per direction with a simple
/// anti-replay check.
pub struct IpsecTunnel {
    aead_out: Aead,
    aead_in: Aead,
    state: SaState,
    suite: CipherSuite,
    revoked: bool,
}

impl IpsecTunnel {
    /// Builds the tunnel endpoint. `initiator` selects which of the two
    /// derived keys is used for the outbound direction, so the two ends
    /// pair up correctly.
    pub fn new(psk: &[u8], initiator: bool, suite: CipherSuite) -> Self {
        let okm = hkdf(b"bolted-ipsec-v1", psk, b"sa-keys", 64);
        let k1 = Key::from_slice(&okm[..32]);
        let k2 = Key::from_slice(&okm[32..]);
        let (out_key, in_key) = if initiator { (k1, k2) } else { (k2, k1) };
        IpsecTunnel {
            aead_out: Aead::new(&out_key),
            aead_in: Aead::new(&in_key),
            state: SaState {
                next_seq: 1,
                highest_received: 0,
            },
            suite,
            revoked: false,
        }
    }

    /// The cipher cost model for this tunnel's suite.
    pub fn cost(&self) -> CipherCost {
        self.suite.default_cost()
    }

    /// The negotiated suite.
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// Marks the SA as revoked (Keylime revocation flow); all subsequent
    /// seal/open operations fail.
    pub fn revoke(&mut self) {
        self.revoked = true;
    }

    /// True if the tunnel has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.revoked
    }

    /// Encapsulates a payload: returns `seq (8B) ‖ ciphertext ‖ tag`.
    pub fn seal(&mut self, payload: &[u8]) -> Result<Vec<u8>, IpsecError> {
        if self.revoked {
            return Err(IpsecError::Revoked);
        }
        let seq = self.state.next_seq;
        self.state.next_seq += 1;
        let nonce = Self::nonce_for(seq);
        let mut out = Vec::with_capacity(8 + payload.len() + 32);
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&self.aead_out.seal(&nonce, &seq.to_be_bytes(), payload));
        Ok(out)
    }

    /// Decapsulates a packet, enforcing monotonic sequence numbers.
    pub fn open(&mut self, packet: &[u8]) -> Result<Vec<u8>, IpsecError> {
        if self.revoked {
            return Err(IpsecError::Revoked);
        }
        if packet.len() < 8 + 32 {
            return Err(IpsecError::Malformed);
        }
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&packet[..8]);
        let seq = u64::from_be_bytes(seq_bytes);
        if seq <= self.state.highest_received {
            return Err(IpsecError::Replay);
        }
        let nonce = Self::nonce_for(seq);
        let plain = self
            .aead_in
            .open(&nonce, &seq_bytes, &packet[8..])
            .map_err(|_: AeadError| IpsecError::Auth)?;
        self.state.highest_received = seq;
        Ok(plain)
    }

    fn nonce_for(seq: u64) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&seq.to_be_bytes());
        nonce
    }
}

/// Builds the two paired endpoints of a tunnel from one PSK.
pub fn tunnel_pair(psk: &[u8], suite: CipherSuite) -> (IpsecTunnel, IpsecTunnel) {
    (
        IpsecTunnel::new(psk, true, suite),
        IpsecTunnel::new(psk, false, suite),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let (mut a, mut b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        let pkt = a.seal(b"hello from a").expect("seals");
        assert_eq!(b.open(&pkt).expect("opens"), b"hello from a");
        let pkt = b.seal(b"hello from b").expect("seals");
        assert_eq!(a.open(&pkt).expect("opens"), b"hello from b");
    }

    #[test]
    fn payload_is_encrypted_on_wire() {
        let (mut a, _b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        let pkt = a.seal(b"super secret tenant data").expect("seals");
        assert!(!pkt.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        let pkt = a.seal(b"once").expect("seals");
        assert!(b.open(&pkt).is_ok());
        assert_eq!(b.open(&pkt), Err(IpsecError::Replay));
    }

    #[test]
    fn tamper_rejected() {
        let (mut a, mut b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        let mut pkt = a.seal(b"data").expect("seals");
        let n = pkt.len();
        pkt[n - 1] ^= 1;
        assert_eq!(b.open(&pkt), Err(IpsecError::Auth));
    }

    #[test]
    fn wrong_psk_rejected() {
        let (mut a, _) = tunnel_pair(b"psk-1", CipherSuite::AesNi);
        let (_, mut b) = tunnel_pair(b"psk-2", CipherSuite::AesNi);
        let pkt = a.seal(b"data").expect("seals");
        assert_eq!(b.open(&pkt), Err(IpsecError::Auth));
    }

    #[test]
    fn directions_use_distinct_keys() {
        // A packet a sealed for b must not open on a's own inbound SA.
        let (mut a, _b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        let pkt = a.seal(b"data").expect("seals");
        assert_eq!(a.open(&pkt), Err(IpsecError::Auth));
    }

    #[test]
    fn revocation_blocks_traffic() {
        let (mut a, mut b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        let pkt = a.seal(b"pre-revocation").expect("seals");
        assert!(b.open(&pkt).is_ok());
        a.revoke();
        b.revoke();
        assert_eq!(a.seal(b"post"), Err(IpsecError::Revoked));
        assert_eq!(b.open(&[0u8; 64]), Err(IpsecError::Revoked));
        assert!(a.is_revoked());
    }

    #[test]
    fn malformed_too_short() {
        let (_, mut b) = tunnel_pair(b"psk", CipherSuite::AesNi);
        assert_eq!(b.open(&[1, 2, 3]), Err(IpsecError::Malformed));
    }

    #[test]
    fn cost_model_reflects_suite() {
        let (a, _) = tunnel_pair(b"psk", CipherSuite::AesSw);
        let (hw, _) = tunnel_pair(b"psk", CipherSuite::AesNi);
        assert!(a.cost().op_ns(1_000_000) > hw.cost().op_ns(1_000_000));
        assert_eq!(a.suite(), CipherSuite::AesSw);
    }
}
