//! Multi-switch topology tests: trunk chains, rings, and partitions.

use bolted_net::{Fabric, LinkModel, TransferSpec};
use bolted_sim::Sim;

fn host_on(
    fabric: &Fabric,
    sw: bolted_net::SwitchId,
    port: usize,
    vlan: u16,
) -> bolted_net::HostId {
    let h = fabric.add_host(format!("h-{}-{port}", sw.0), LinkModel::ten_gbe());
    fabric.attach(h, sw, port).expect("attach");
    fabric.set_host_vlan(h, Some(vlan)).expect("vlan");
    h
}

#[test]
fn long_trunk_chain_routes() {
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let switches: Vec<_> = (0..6)
        .map(|i| fabric.add_switch(format!("sw{i}"), 4))
        .collect();
    for w in switches.windows(2) {
        fabric.trunk(w[0], w[1]);
    }
    let a = host_on(&fabric, switches[0], 0, 42);
    let b = host_on(&fabric, switches[5], 0, 42);
    assert_eq!(fabric.path(a, b), Ok(42));
    let d = sim
        .block_on({
            let f = fabric.clone();
            async move { f.transfer(a, b, 1 << 20, TransferSpec::plain()).await }
        })
        .expect("routes across 6 switches");
    assert!(d.as_secs_f64() > 0.0);
}

#[test]
fn trunk_ring_does_not_loop_forever() {
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let switches: Vec<_> = (0..4)
        .map(|i| fabric.add_switch(format!("sw{i}"), 4))
        .collect();
    for i in 0..4 {
        fabric.trunk(switches[i], switches[(i + 1) % 4]);
    }
    let a = host_on(&fabric, switches[0], 0, 7);
    let b = host_on(&fabric, switches[2], 0, 7);
    // BFS over the ring must terminate and find the path.
    assert_eq!(fabric.path(a, b), Ok(7));
}

#[test]
fn partitioned_fabric_has_no_route() {
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let s1 = fabric.add_switch("island-1", 4);
    let s2 = fabric.add_switch("island-2", 4);
    // No trunk between them.
    let a = host_on(&fabric, s1, 0, 9);
    let b = host_on(&fabric, s2, 0, 9);
    assert_eq!(fabric.path(a, b), Err(bolted_net::NetError::NoRoute));
}

#[test]
fn same_switch_different_vlans_still_isolated() {
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let sw = fabric.add_switch("tor", 8);
    let a = host_on(&fabric, sw, 0, 1);
    let b = host_on(&fabric, sw, 1, 2);
    assert_eq!(
        fabric.path(a, b),
        Err(bolted_net::NetError::IsolationViolation)
    );
}

#[test]
fn vlan_change_takes_effect_immediately() {
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let sw = fabric.add_switch("tor", 8);
    let a = host_on(&fabric, sw, 0, 1);
    let b = host_on(&fabric, sw, 1, 2);
    assert!(fabric.path(a, b).is_err());
    fabric.set_host_vlan(b, Some(1)).expect("move b");
    assert_eq!(fabric.path(a, b), Ok(1));
    fabric.set_host_vlan(a, None).expect("strip a");
    assert!(fabric.path(a, b).is_err());
}

#[test]
fn bidirectional_flows_do_not_deadlock() {
    // A->B and B->A simultaneously: full-duplex tx/rx resources must not
    // produce a lock cycle.
    let sim = Sim::new();
    let fabric = Fabric::new(&sim);
    let sw = fabric.add_switch("tor", 4);
    let a = host_on(&fabric, sw, 0, 5);
    let b = host_on(&fabric, sw, 1, 5);
    for (from, to) in [(a, b), (b, a)] {
        let f = fabric.clone();
        sim.spawn(async move {
            f.transfer(from, to, 64 << 20, TransferSpec::plain())
                .await
                .expect("transfers");
        });
    }
    assert_eq!(sim.run(), 0, "no deadlock, all tasks completed");
    // Full duplex: both directions finish in roughly single-flow time.
    assert!(sim.now().as_secs_f64() < 0.12, "{}", sim.now());
}
