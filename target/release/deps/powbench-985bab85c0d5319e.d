/root/repo/target/release/deps/powbench-985bab85c0d5319e.d: crates/bench/src/bin/powbench.rs

/root/repo/target/release/deps/powbench-985bab85c0d5319e: crates/bench/src/bin/powbench.rs

crates/bench/src/bin/powbench.rs:
