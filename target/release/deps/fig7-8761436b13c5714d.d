/root/repo/target/release/deps/fig7-8761436b13c5714d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-8761436b13c5714d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
