/root/repo/target/release/deps/bolted_bmi-59949f91d7cb0223.d: crates/bmi/src/lib.rs

/root/repo/target/release/deps/libbolted_bmi-59949f91d7cb0223.rlib: crates/bmi/src/lib.rs

/root/repo/target/release/deps/libbolted_bmi-59949f91d7cb0223.rmeta: crates/bmi/src/lib.rs

crates/bmi/src/lib.rs:
