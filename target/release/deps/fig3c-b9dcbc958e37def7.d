/root/repo/target/release/deps/fig3c-b9dcbc958e37def7.d: crates/bench/src/bin/fig3c.rs

/root/repo/target/release/deps/fig3c-b9dcbc958e37def7: crates/bench/src/bin/fig3c.rs

crates/bench/src/bin/fig3c.rs:
