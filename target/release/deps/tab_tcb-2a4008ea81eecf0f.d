/root/repo/target/release/deps/tab_tcb-2a4008ea81eecf0f.d: crates/bench/src/bin/tab_tcb.rs

/root/repo/target/release/deps/tab_tcb-2a4008ea81eecf0f: crates/bench/src/bin/tab_tcb.rs

crates/bench/src/bin/tab_tcb.rs:
