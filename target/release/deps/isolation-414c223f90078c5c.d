/root/repo/target/release/deps/isolation-414c223f90078c5c.d: tests/isolation.rs

/root/repo/target/release/deps/isolation-414c223f90078c5c: tests/isolation.rs

tests/isolation.rs:
