/root/repo/target/release/deps/tab_revocation-e9e95ec0df755304.d: crates/bench/src/bin/tab_revocation.rs

/root/repo/target/release/deps/tab_revocation-e9e95ec0df755304: crates/bench/src/bin/tab_revocation.rs

crates/bench/src/bin/tab_revocation.rs:
