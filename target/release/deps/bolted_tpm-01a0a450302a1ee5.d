/root/repo/target/release/deps/bolted_tpm-01a0a450302a1ee5.d: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

/root/repo/target/release/deps/libbolted_tpm-01a0a450302a1ee5.rlib: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

/root/repo/target/release/deps/libbolted_tpm-01a0a450302a1ee5.rmeta: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

crates/tpm/src/lib.rs:
crates/tpm/src/device.rs:
crates/tpm/src/eventlog.rs:
crates/tpm/src/pcr.rs:
crates/tpm/src/seal.rs:
