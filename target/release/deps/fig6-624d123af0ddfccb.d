/root/repo/target/release/deps/fig6-624d123af0ddfccb.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-624d123af0ddfccb: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
