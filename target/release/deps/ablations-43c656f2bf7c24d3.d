/root/repo/target/release/deps/ablations-43c656f2bf7c24d3.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-43c656f2bf7c24d3: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
