/root/repo/target/release/deps/hotpath-a562f926f9d49867.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-a562f926f9d49867: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
