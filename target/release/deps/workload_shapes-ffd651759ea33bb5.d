/root/repo/target/release/deps/workload_shapes-ffd651759ea33bb5.d: tests/workload_shapes.rs

/root/repo/target/release/deps/workload_shapes-ffd651759ea33bb5: tests/workload_shapes.rs

tests/workload_shapes.rs:
