/root/repo/target/release/deps/bolted_sim-3c4771ffd2d51beb.d: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/bolted_sim-3c4771ffd2d51beb: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/executor.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
