/root/repo/target/release/deps/bolted_hil-9f3a7c462c2c5410.d: crates/hil/src/lib.rs

/root/repo/target/release/deps/bolted_hil-9f3a7c462c2c5410: crates/hil/src/lib.rs

crates/hil/src/lib.rs:
