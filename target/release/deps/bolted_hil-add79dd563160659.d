/root/repo/target/release/deps/bolted_hil-add79dd563160659.d: crates/hil/src/lib.rs

/root/repo/target/release/deps/libbolted_hil-add79dd563160659.rlib: crates/hil/src/lib.rs

/root/repo/target/release/deps/libbolted_hil-add79dd563160659.rmeta: crates/hil/src/lib.rs

crates/hil/src/lib.rs:
