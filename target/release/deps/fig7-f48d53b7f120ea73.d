/root/repo/target/release/deps/fig7-f48d53b7f120ea73.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-f48d53b7f120ea73: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
