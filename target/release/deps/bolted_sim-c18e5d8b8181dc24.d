/root/repo/target/release/deps/bolted_sim-c18e5d8b8181dc24.d: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libbolted_sim-c18e5d8b8181dc24.rlib: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libbolted_sim-c18e5d8b8181dc24.rmeta: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/executor.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
