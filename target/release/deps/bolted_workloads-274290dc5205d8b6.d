/root/repo/target/release/deps/bolted_workloads-274290dc5205d8b6.d: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

/root/repo/target/release/deps/libbolted_workloads-274290dc5205d8b6.rlib: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

/root/repo/target/release/deps/libbolted_workloads-274290dc5205d8b6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cluster_net.rs:
crates/workloads/src/dd.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/kcompile.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/terasort.rs:
