/root/repo/target/release/deps/bolted-f1a6911f86c40b25.d: src/lib.rs

/root/repo/target/release/deps/libbolted-f1a6911f86c40b25.rlib: src/lib.rs

/root/repo/target/release/deps/libbolted-f1a6911f86c40b25.rmeta: src/lib.rs

src/lib.rs:
