/root/repo/target/release/deps/executor_stress-966468d285873dd9.d: crates/sim/tests/executor_stress.rs

/root/repo/target/release/deps/executor_stress-966468d285873dd9: crates/sim/tests/executor_stress.rs

crates/sim/tests/executor_stress.rs:
