/root/repo/target/release/deps/bolted_bmi-a15db27f76914840.d: crates/bmi/src/lib.rs

/root/repo/target/release/deps/bolted_bmi-a15db27f76914840: crates/bmi/src/lib.rs

crates/bmi/src/lib.rs:
