/root/repo/target/release/deps/bolted_bench-3bb649e036f1d4c4.d: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

/root/repo/target/release/deps/bolted_bench-3bb649e036f1d4c4: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

crates/bench/src/lib.rs:
crates/bench/src/hotpath.rs:
