/root/repo/target/release/deps/bolted_crypto-f1bc08160ac8fd90.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/bignum.rs crates/crypto/src/chacha20.rs crates/crypto/src/cost.rs crates/crypto/src/ct.rs crates/crypto/src/hmac.rs crates/crypto/src/luks.rs crates/crypto/src/montgomery.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/bolted_crypto-f1bc08160ac8fd90: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/bignum.rs crates/crypto/src/chacha20.rs crates/crypto/src/cost.rs crates/crypto/src/ct.rs crates/crypto/src/hmac.rs crates/crypto/src/luks.rs crates/crypto/src/montgomery.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/bignum.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/cost.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/luks.rs:
crates/crypto/src/montgomery.rs:
crates/crypto/src/prime.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/sha256.rs:
