/root/repo/target/release/deps/bolted_bench-5d0976654ca9208b.d: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

/root/repo/target/release/deps/libbolted_bench-5d0976654ca9208b.rlib: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

/root/repo/target/release/deps/libbolted_bench-5d0976654ca9208b.rmeta: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

crates/bench/src/lib.rs:
crates/bench/src/hotpath.rs:
