/root/repo/target/release/deps/tab_tcb-2f17b6677a44b34b.d: crates/bench/src/bin/tab_tcb.rs

/root/repo/target/release/deps/tab_tcb-2f17b6677a44b34b: crates/bench/src/bin/tab_tcb.rs

crates/bench/src/bin/tab_tcb.rs:
