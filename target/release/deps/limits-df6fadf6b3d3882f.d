/root/repo/target/release/deps/limits-df6fadf6b3d3882f.d: crates/hil/tests/limits.rs

/root/repo/target/release/deps/limits-df6fadf6b3d3882f: crates/hil/tests/limits.rs

crates/hil/tests/limits.rs:
