/root/repo/target/release/deps/bolted_storage-2d56f43b65feb33d.d: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

/root/repo/target/release/deps/bolted_storage-2d56f43b65feb33d: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

crates/storage/src/lib.rs:
crates/storage/src/cluster.rs:
crates/storage/src/image.rs:
crates/storage/src/iscsi.rs:
