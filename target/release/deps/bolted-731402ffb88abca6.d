/root/repo/target/release/deps/bolted-731402ffb88abca6.d: src/lib.rs

/root/repo/target/release/deps/libbolted-731402ffb88abca6.rlib: src/lib.rs

/root/repo/target/release/deps/libbolted-731402ffb88abca6.rmeta: src/lib.rs

src/lib.rs:
