/root/repo/target/release/deps/topology-6f2f136e852862e8.d: crates/net/tests/topology.rs

/root/repo/target/release/deps/topology-6f2f136e852862e8: crates/net/tests/topology.rs

crates/net/tests/topology.rs:
