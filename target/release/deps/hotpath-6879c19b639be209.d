/root/repo/target/release/deps/hotpath-6879c19b639be209.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-6879c19b639be209: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
