/root/repo/target/release/deps/bolted_workloads-8dd52e07c95c642e.d: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

/root/repo/target/release/deps/bolted_workloads-8dd52e07c95c642e: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cluster_net.rs:
crates/workloads/src/dd.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/kcompile.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/terasort.rs:
