/root/repo/target/release/deps/bolted-d6f31675324107ed.d: src/lib.rs

/root/repo/target/release/deps/bolted-d6f31675324107ed: src/lib.rs

src/lib.rs:
