/root/repo/target/release/deps/end_to_end-e6856a026aa365e2.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-e6856a026aa365e2: tests/end_to_end.rs

tests/end_to_end.rs:
