/root/repo/target/release/deps/tab_revocation-889ea6a9593be85f.d: crates/bench/src/bin/tab_revocation.rs

/root/repo/target/release/deps/tab_revocation-889ea6a9593be85f: crates/bench/src/bin/tab_revocation.rs

crates/bench/src/bin/tab_revocation.rs:
