/root/repo/target/release/deps/fig4-eb078ce610036b23.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-eb078ce610036b23: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
