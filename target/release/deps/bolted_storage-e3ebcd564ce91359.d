/root/repo/target/release/deps/bolted_storage-e3ebcd564ce91359.d: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

/root/repo/target/release/deps/libbolted_storage-e3ebcd564ce91359.rlib: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

/root/repo/target/release/deps/libbolted_storage-e3ebcd564ce91359.rmeta: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

crates/storage/src/lib.rs:
crates/storage/src/cluster.rs:
crates/storage/src/image.rs:
crates/storage/src/iscsi.rs:
