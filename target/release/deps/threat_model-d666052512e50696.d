/root/repo/target/release/deps/threat_model-d666052512e50696.d: tests/threat_model.rs

/root/repo/target/release/deps/threat_model-d666052512e50696: tests/threat_model.rs

tests/threat_model.rs:
