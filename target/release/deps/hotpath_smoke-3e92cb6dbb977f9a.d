/root/repo/target/release/deps/hotpath_smoke-3e92cb6dbb977f9a.d: crates/bench/tests/hotpath_smoke.rs

/root/repo/target/release/deps/hotpath_smoke-3e92cb6dbb977f9a: crates/bench/tests/hotpath_smoke.rs

crates/bench/tests/hotpath_smoke.rs:

# env-dep:CARGO_BIN_EXE_hotpath=/root/repo/target/release/hotpath
