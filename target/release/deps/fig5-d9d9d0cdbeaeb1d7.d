/root/repo/target/release/deps/fig5-d9d9d0cdbeaeb1d7.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-d9d9d0cdbeaeb1d7: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
