/root/repo/target/release/deps/bolted_net-127607a4bc3af332.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

/root/repo/target/release/deps/libbolted_net-127607a4bc3af332.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

/root/repo/target/release/deps/libbolted_net-127607a4bc3af332.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/iperf.rs:
crates/net/src/ipsec.rs:
crates/net/src/link.rs:
