/root/repo/target/release/deps/bolted_core-f643f5c6a4f54081.d: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

/root/repo/target/release/deps/libbolted_core-f643f5c6a4f54081.rlib: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

/root/repo/target/release/deps/libbolted_core-f643f5c6a4f54081.rmeta: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

crates/core/src/lib.rs:
crates/core/src/calib.rs:
crates/core/src/cloud.rs:
crates/core/src/enclave.rs:
crates/core/src/foreman.rs:
crates/core/src/lifecycle.rs:
crates/core/src/profile.rs:
crates/core/src/provision.rs:
