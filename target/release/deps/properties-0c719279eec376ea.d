/root/repo/target/release/deps/properties-0c719279eec376ea.d: tests/properties.rs

/root/repo/target/release/deps/properties-0c719279eec376ea: tests/properties.rs

tests/properties.rs:
