/root/repo/target/release/deps/fig3a-67ca37bb2403d310.d: crates/bench/src/bin/fig3a.rs

/root/repo/target/release/deps/fig3a-67ca37bb2403d310: crates/bench/src/bin/fig3a.rs

crates/bench/src/bin/fig3a.rs:
