/root/repo/target/release/deps/clone_chains-170f6115277ac996.d: crates/storage/tests/clone_chains.rs

/root/repo/target/release/deps/clone_chains-170f6115277ac996: crates/storage/tests/clone_chains.rs

crates/storage/tests/clone_chains.rs:
