/root/repo/target/release/deps/fig3c-108d937945ac35de.d: crates/bench/src/bin/fig3c.rs

/root/repo/target/release/deps/fig3c-108d937945ac35de: crates/bench/src/bin/fig3c.rs

crates/bench/src/bin/fig3c.rs:
