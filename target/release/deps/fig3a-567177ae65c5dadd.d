/root/repo/target/release/deps/fig3a-567177ae65c5dadd.d: crates/bench/src/bin/fig3a.rs

/root/repo/target/release/deps/fig3a-567177ae65c5dadd: crates/bench/src/bin/fig3a.rs

crates/bench/src/bin/fig3a.rs:
