/root/repo/target/release/deps/bolted_keylime-49149272880ed77e.d: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/release/deps/bolted_keylime-49149272880ed77e: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

crates/keylime/src/lib.rs:
crates/keylime/src/agent.rs:
crates/keylime/src/ima.rs:
crates/keylime/src/payload.rs:
crates/keylime/src/registrar.rs:
crates/keylime/src/verifier.rs:
