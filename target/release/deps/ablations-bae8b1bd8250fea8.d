/root/repo/target/release/deps/ablations-bae8b1bd8250fea8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-bae8b1bd8250fea8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
