/root/repo/target/release/deps/fig5-59253823aef7e573.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-59253823aef7e573: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
