/root/repo/target/release/deps/attestation-615b825b477b70cd.d: tests/attestation.rs

/root/repo/target/release/deps/attestation-615b825b477b70cd: tests/attestation.rs

tests/attestation.rs:
