/root/repo/target/release/deps/fig4-b52f212c55deb2b3.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-b52f212c55deb2b3: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
