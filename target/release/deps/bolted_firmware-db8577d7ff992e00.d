/root/repo/target/release/deps/bolted_firmware-db8577d7ff992e00.d: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

/root/repo/target/release/deps/bolted_firmware-db8577d7ff992e00: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

crates/firmware/src/lib.rs:
crates/firmware/src/bootchain.rs:
crates/firmware/src/image.rs:
crates/firmware/src/machine.rs:
