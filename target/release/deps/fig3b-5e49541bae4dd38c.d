/root/repo/target/release/deps/fig3b-5e49541bae4dd38c.d: crates/bench/src/bin/fig3b.rs

/root/repo/target/release/deps/fig3b-5e49541bae4dd38c: crates/bench/src/bin/fig3b.rs

crates/bench/src/bin/fig3b.rs:
