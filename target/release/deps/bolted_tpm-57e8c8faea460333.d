/root/repo/target/release/deps/bolted_tpm-57e8c8faea460333.d: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

/root/repo/target/release/deps/bolted_tpm-57e8c8faea460333: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

crates/tpm/src/lib.rs:
crates/tpm/src/device.rs:
crates/tpm/src/eventlog.rs:
crates/tpm/src/pcr.rs:
crates/tpm/src/seal.rs:
