/root/repo/target/release/deps/profiles-6d46b9a17d6730ca.d: tests/profiles.rs

/root/repo/target/release/deps/profiles-6d46b9a17d6730ca: tests/profiles.rs

tests/profiles.rs:
