/root/repo/target/release/deps/fig6-bad34e02b4de1e50.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-bad34e02b4de1e50: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
