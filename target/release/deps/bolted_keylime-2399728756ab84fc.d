/root/repo/target/release/deps/bolted_keylime-2399728756ab84fc.d: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/release/deps/libbolted_keylime-2399728756ab84fc.rlib: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/release/deps/libbolted_keylime-2399728756ab84fc.rmeta: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

crates/keylime/src/lib.rs:
crates/keylime/src/agent.rs:
crates/keylime/src/ima.rs:
crates/keylime/src/payload.rs:
crates/keylime/src/registrar.rs:
crates/keylime/src/verifier.rs:
