/root/repo/target/release/deps/bolted_keylime-b29c2007aceaa104.d: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/release/deps/libbolted_keylime-b29c2007aceaa104.rlib: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/release/deps/libbolted_keylime-b29c2007aceaa104.rmeta: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

crates/keylime/src/lib.rs:
crates/keylime/src/agent.rs:
crates/keylime/src/ima.rs:
crates/keylime/src/payload.rs:
crates/keylime/src/registrar.rs:
crates/keylime/src/verifier.rs:
