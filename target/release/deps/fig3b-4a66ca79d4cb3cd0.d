/root/repo/target/release/deps/fig3b-4a66ca79d4cb3cd0.d: crates/bench/src/bin/fig3b.rs

/root/repo/target/release/deps/fig3b-4a66ca79d4cb3cd0: crates/bench/src/bin/fig3b.rs

crates/bench/src/bin/fig3b.rs:
