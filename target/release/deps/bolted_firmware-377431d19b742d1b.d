/root/repo/target/release/deps/bolted_firmware-377431d19b742d1b.d: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

/root/repo/target/release/deps/libbolted_firmware-377431d19b742d1b.rlib: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

/root/repo/target/release/deps/libbolted_firmware-377431d19b742d1b.rmeta: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

crates/firmware/src/lib.rs:
crates/firmware/src/bootchain.rs:
crates/firmware/src/image.rs:
crates/firmware/src/machine.rs:
