/root/repo/target/release/deps/bolted_net-ee4cf9ef25653c2d.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

/root/repo/target/release/deps/bolted_net-ee4cf9ef25653c2d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/iperf.rs:
crates/net/src/ipsec.rs:
crates/net/src/link.rs:
