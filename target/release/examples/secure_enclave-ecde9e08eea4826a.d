/root/repo/target/release/examples/secure_enclave-ecde9e08eea4826a.d: examples/secure_enclave.rs

/root/repo/target/release/examples/secure_enclave-ecde9e08eea4826a: examples/secure_enclave.rs

examples/secure_enclave.rs:
