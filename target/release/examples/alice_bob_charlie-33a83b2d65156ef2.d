/root/repo/target/release/examples/alice_bob_charlie-33a83b2d65156ef2.d: examples/alice_bob_charlie.rs

/root/repo/target/release/examples/alice_bob_charlie-33a83b2d65156ef2: examples/alice_bob_charlie.rs

examples/alice_bob_charlie.rs:
