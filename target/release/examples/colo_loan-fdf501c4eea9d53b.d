/root/repo/target/release/examples/colo_loan-fdf501c4eea9d53b.d: examples/colo_loan.rs

/root/repo/target/release/examples/colo_loan-fdf501c4eea9d53b: examples/colo_loan.rs

examples/colo_loan.rs:
