/root/repo/target/release/examples/threat_demo-80247436d1a7a4a5.d: examples/threat_demo.rs

/root/repo/target/release/examples/threat_demo-80247436d1a7a4a5: examples/threat_demo.rs

examples/threat_demo.rs:
