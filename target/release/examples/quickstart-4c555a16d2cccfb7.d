/root/repo/target/release/examples/quickstart-4c555a16d2cccfb7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4c555a16d2cccfb7: examples/quickstart.rs

examples/quickstart.rs:
