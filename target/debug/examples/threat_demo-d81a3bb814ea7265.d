/root/repo/target/debug/examples/threat_demo-d81a3bb814ea7265.d: examples/threat_demo.rs

/root/repo/target/debug/examples/threat_demo-d81a3bb814ea7265: examples/threat_demo.rs

examples/threat_demo.rs:
