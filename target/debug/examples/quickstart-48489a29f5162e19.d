/root/repo/target/debug/examples/quickstart-48489a29f5162e19.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-48489a29f5162e19: examples/quickstart.rs

examples/quickstart.rs:
