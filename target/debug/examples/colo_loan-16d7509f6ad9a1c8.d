/root/repo/target/debug/examples/colo_loan-16d7509f6ad9a1c8.d: examples/colo_loan.rs

/root/repo/target/debug/examples/colo_loan-16d7509f6ad9a1c8: examples/colo_loan.rs

examples/colo_loan.rs:
