/root/repo/target/debug/examples/alice_bob_charlie-efbeb3256349a249.d: examples/alice_bob_charlie.rs

/root/repo/target/debug/examples/alice_bob_charlie-efbeb3256349a249: examples/alice_bob_charlie.rs

examples/alice_bob_charlie.rs:
