/root/repo/target/debug/examples/quickstart-55eb946f7c897bec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-55eb946f7c897bec: examples/quickstart.rs

examples/quickstart.rs:
