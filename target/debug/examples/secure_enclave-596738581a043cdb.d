/root/repo/target/debug/examples/secure_enclave-596738581a043cdb.d: examples/secure_enclave.rs

/root/repo/target/debug/examples/secure_enclave-596738581a043cdb: examples/secure_enclave.rs

examples/secure_enclave.rs:
