/root/repo/target/debug/examples/alice_bob_charlie-07bd2fe25c0553f6.d: examples/alice_bob_charlie.rs

/root/repo/target/debug/examples/alice_bob_charlie-07bd2fe25c0553f6: examples/alice_bob_charlie.rs

examples/alice_bob_charlie.rs:
