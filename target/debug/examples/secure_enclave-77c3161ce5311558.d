/root/repo/target/debug/examples/secure_enclave-77c3161ce5311558.d: examples/secure_enclave.rs

/root/repo/target/debug/examples/secure_enclave-77c3161ce5311558: examples/secure_enclave.rs

examples/secure_enclave.rs:
