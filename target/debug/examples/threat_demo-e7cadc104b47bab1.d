/root/repo/target/debug/examples/threat_demo-e7cadc104b47bab1.d: examples/threat_demo.rs

/root/repo/target/debug/examples/threat_demo-e7cadc104b47bab1: examples/threat_demo.rs

examples/threat_demo.rs:
