/root/repo/target/debug/examples/colo_loan-ad4b525227be93a0.d: examples/colo_loan.rs

/root/repo/target/debug/examples/colo_loan-ad4b525227be93a0: examples/colo_loan.rs

examples/colo_loan.rs:
