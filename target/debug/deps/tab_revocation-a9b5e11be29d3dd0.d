/root/repo/target/debug/deps/tab_revocation-a9b5e11be29d3dd0.d: crates/bench/src/bin/tab_revocation.rs

/root/repo/target/debug/deps/tab_revocation-a9b5e11be29d3dd0: crates/bench/src/bin/tab_revocation.rs

crates/bench/src/bin/tab_revocation.rs:
