/root/repo/target/debug/deps/fig7-e8f572ec76326400.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-e8f572ec76326400: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
