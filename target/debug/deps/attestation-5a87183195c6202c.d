/root/repo/target/debug/deps/attestation-5a87183195c6202c.d: tests/attestation.rs

/root/repo/target/debug/deps/attestation-5a87183195c6202c: tests/attestation.rs

tests/attestation.rs:
