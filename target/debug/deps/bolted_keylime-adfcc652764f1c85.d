/root/repo/target/debug/deps/bolted_keylime-adfcc652764f1c85.d: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/debug/deps/libbolted_keylime-adfcc652764f1c85.rlib: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/debug/deps/libbolted_keylime-adfcc652764f1c85.rmeta: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

crates/keylime/src/lib.rs:
crates/keylime/src/agent.rs:
crates/keylime/src/ima.rs:
crates/keylime/src/payload.rs:
crates/keylime/src/registrar.rs:
crates/keylime/src/verifier.rs:
