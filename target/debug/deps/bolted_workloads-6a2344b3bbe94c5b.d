/root/repo/target/debug/deps/bolted_workloads-6a2344b3bbe94c5b.d: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

/root/repo/target/debug/deps/bolted_workloads-6a2344b3bbe94c5b: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cluster_net.rs:
crates/workloads/src/dd.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/kcompile.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/terasort.rs:
