/root/repo/target/debug/deps/fig6-92bc5d7dc0a6c69c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-92bc5d7dc0a6c69c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
