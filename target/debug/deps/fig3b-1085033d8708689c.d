/root/repo/target/debug/deps/fig3b-1085033d8708689c.d: crates/bench/src/bin/fig3b.rs

/root/repo/target/debug/deps/fig3b-1085033d8708689c: crates/bench/src/bin/fig3b.rs

crates/bench/src/bin/fig3b.rs:
