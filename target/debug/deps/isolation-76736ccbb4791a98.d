/root/repo/target/debug/deps/isolation-76736ccbb4791a98.d: tests/isolation.rs

/root/repo/target/debug/deps/isolation-76736ccbb4791a98: tests/isolation.rs

tests/isolation.rs:
