/root/repo/target/debug/deps/fig3c-a9a94c26f4834ed2.d: crates/bench/src/bin/fig3c.rs

/root/repo/target/debug/deps/fig3c-a9a94c26f4834ed2: crates/bench/src/bin/fig3c.rs

crates/bench/src/bin/fig3c.rs:
