/root/repo/target/debug/deps/bolted_core-f2d95581b6602243.d: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

/root/repo/target/debug/deps/bolted_core-f2d95581b6602243: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

crates/core/src/lib.rs:
crates/core/src/calib.rs:
crates/core/src/cloud.rs:
crates/core/src/enclave.rs:
crates/core/src/foreman.rs:
crates/core/src/lifecycle.rs:
crates/core/src/profile.rs:
crates/core/src/provision.rs:
