/root/repo/target/debug/deps/limits-23194ac4c046315b.d: crates/hil/tests/limits.rs

/root/repo/target/debug/deps/limits-23194ac4c046315b: crates/hil/tests/limits.rs

crates/hil/tests/limits.rs:
