/root/repo/target/debug/deps/tab_revocation-cd03c2816bf307ec.d: crates/bench/src/bin/tab_revocation.rs

/root/repo/target/debug/deps/tab_revocation-cd03c2816bf307ec: crates/bench/src/bin/tab_revocation.rs

crates/bench/src/bin/tab_revocation.rs:
