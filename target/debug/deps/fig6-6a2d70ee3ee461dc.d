/root/repo/target/debug/deps/fig6-6a2d70ee3ee461dc.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-6a2d70ee3ee461dc: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
