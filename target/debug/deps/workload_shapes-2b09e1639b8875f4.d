/root/repo/target/debug/deps/workload_shapes-2b09e1639b8875f4.d: tests/workload_shapes.rs

/root/repo/target/debug/deps/workload_shapes-2b09e1639b8875f4: tests/workload_shapes.rs

tests/workload_shapes.rs:
