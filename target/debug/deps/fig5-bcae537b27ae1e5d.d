/root/repo/target/debug/deps/fig5-bcae537b27ae1e5d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-bcae537b27ae1e5d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
