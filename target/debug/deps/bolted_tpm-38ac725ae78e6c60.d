/root/repo/target/debug/deps/bolted_tpm-38ac725ae78e6c60.d: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

/root/repo/target/debug/deps/libbolted_tpm-38ac725ae78e6c60.rlib: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

/root/repo/target/debug/deps/libbolted_tpm-38ac725ae78e6c60.rmeta: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

crates/tpm/src/lib.rs:
crates/tpm/src/device.rs:
crates/tpm/src/eventlog.rs:
crates/tpm/src/pcr.rs:
crates/tpm/src/seal.rs:
