/root/repo/target/debug/deps/end_to_end-94e100b4ff7a7926.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-94e100b4ff7a7926: tests/end_to_end.rs

tests/end_to_end.rs:
