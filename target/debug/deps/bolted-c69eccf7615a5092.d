/root/repo/target/debug/deps/bolted-c69eccf7615a5092.d: src/lib.rs

/root/repo/target/debug/deps/bolted-c69eccf7615a5092: src/lib.rs

src/lib.rs:
