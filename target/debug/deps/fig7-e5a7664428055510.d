/root/repo/target/debug/deps/fig7-e5a7664428055510.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-e5a7664428055510: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
