/root/repo/target/debug/deps/fig5-9f210d858be69555.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-9f210d858be69555: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
