/root/repo/target/debug/deps/bolted-4a9da1703d5a6a2e.d: src/lib.rs

/root/repo/target/debug/deps/libbolted-4a9da1703d5a6a2e.rlib: src/lib.rs

/root/repo/target/debug/deps/libbolted-4a9da1703d5a6a2e.rmeta: src/lib.rs

src/lib.rs:
