/root/repo/target/debug/deps/workload_shapes-ec4d8d5a61c930bf.d: tests/workload_shapes.rs

/root/repo/target/debug/deps/workload_shapes-ec4d8d5a61c930bf: tests/workload_shapes.rs

tests/workload_shapes.rs:
