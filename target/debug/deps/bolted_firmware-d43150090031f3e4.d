/root/repo/target/debug/deps/bolted_firmware-d43150090031f3e4.d: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

/root/repo/target/debug/deps/bolted_firmware-d43150090031f3e4: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

crates/firmware/src/lib.rs:
crates/firmware/src/bootchain.rs:
crates/firmware/src/image.rs:
crates/firmware/src/machine.rs:
