/root/repo/target/debug/deps/hotpath_smoke-91f92f7b95d1cf47.d: crates/bench/tests/hotpath_smoke.rs

/root/repo/target/debug/deps/hotpath_smoke-91f92f7b95d1cf47: crates/bench/tests/hotpath_smoke.rs

crates/bench/tests/hotpath_smoke.rs:

# env-dep:CARGO_BIN_EXE_hotpath=/root/repo/target/debug/hotpath
