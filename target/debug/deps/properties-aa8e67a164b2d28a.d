/root/repo/target/debug/deps/properties-aa8e67a164b2d28a.d: tests/properties.rs

/root/repo/target/debug/deps/properties-aa8e67a164b2d28a: tests/properties.rs

tests/properties.rs:
