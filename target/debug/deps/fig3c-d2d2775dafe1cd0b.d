/root/repo/target/debug/deps/fig3c-d2d2775dafe1cd0b.d: crates/bench/src/bin/fig3c.rs

/root/repo/target/debug/deps/fig3c-d2d2775dafe1cd0b: crates/bench/src/bin/fig3c.rs

crates/bench/src/bin/fig3c.rs:
