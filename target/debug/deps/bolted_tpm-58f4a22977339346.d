/root/repo/target/debug/deps/bolted_tpm-58f4a22977339346.d: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

/root/repo/target/debug/deps/bolted_tpm-58f4a22977339346: crates/tpm/src/lib.rs crates/tpm/src/device.rs crates/tpm/src/eventlog.rs crates/tpm/src/pcr.rs crates/tpm/src/seal.rs

crates/tpm/src/lib.rs:
crates/tpm/src/device.rs:
crates/tpm/src/eventlog.rs:
crates/tpm/src/pcr.rs:
crates/tpm/src/seal.rs:
