/root/repo/target/debug/deps/attestation-7df2b825f2bee16b.d: tests/attestation.rs

/root/repo/target/debug/deps/attestation-7df2b825f2bee16b: tests/attestation.rs

tests/attestation.rs:
