/root/repo/target/debug/deps/profiles-01d2e089235e9d5c.d: tests/profiles.rs

/root/repo/target/debug/deps/profiles-01d2e089235e9d5c: tests/profiles.rs

tests/profiles.rs:
