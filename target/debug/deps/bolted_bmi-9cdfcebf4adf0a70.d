/root/repo/target/debug/deps/bolted_bmi-9cdfcebf4adf0a70.d: crates/bmi/src/lib.rs

/root/repo/target/debug/deps/bolted_bmi-9cdfcebf4adf0a70: crates/bmi/src/lib.rs

crates/bmi/src/lib.rs:
