/root/repo/target/debug/deps/bolted_core-34eb58459e4264f3.d: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

/root/repo/target/debug/deps/libbolted_core-34eb58459e4264f3.rlib: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

/root/repo/target/debug/deps/libbolted_core-34eb58459e4264f3.rmeta: crates/core/src/lib.rs crates/core/src/calib.rs crates/core/src/cloud.rs crates/core/src/enclave.rs crates/core/src/foreman.rs crates/core/src/lifecycle.rs crates/core/src/profile.rs crates/core/src/provision.rs

crates/core/src/lib.rs:
crates/core/src/calib.rs:
crates/core/src/cloud.rs:
crates/core/src/enclave.rs:
crates/core/src/foreman.rs:
crates/core/src/lifecycle.rs:
crates/core/src/profile.rs:
crates/core/src/provision.rs:
