/root/repo/target/debug/deps/fig3a-87a5c546f4b7a706.d: crates/bench/src/bin/fig3a.rs

/root/repo/target/debug/deps/fig3a-87a5c546f4b7a706: crates/bench/src/bin/fig3a.rs

crates/bench/src/bin/fig3a.rs:
