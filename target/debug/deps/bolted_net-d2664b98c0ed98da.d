/root/repo/target/debug/deps/bolted_net-d2664b98c0ed98da.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

/root/repo/target/debug/deps/bolted_net-d2664b98c0ed98da: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/iperf.rs:
crates/net/src/ipsec.rs:
crates/net/src/link.rs:
