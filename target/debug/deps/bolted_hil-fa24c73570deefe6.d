/root/repo/target/debug/deps/bolted_hil-fa24c73570deefe6.d: crates/hil/src/lib.rs

/root/repo/target/debug/deps/bolted_hil-fa24c73570deefe6: crates/hil/src/lib.rs

crates/hil/src/lib.rs:
