/root/repo/target/debug/deps/end_to_end-3eb6d22c75ee3ea9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3eb6d22c75ee3ea9: tests/end_to_end.rs

tests/end_to_end.rs:
