/root/repo/target/debug/deps/topology-ecaf2b28fcf14c86.d: crates/net/tests/topology.rs

/root/repo/target/debug/deps/topology-ecaf2b28fcf14c86: crates/net/tests/topology.rs

crates/net/tests/topology.rs:
