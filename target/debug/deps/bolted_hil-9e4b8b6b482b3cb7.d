/root/repo/target/debug/deps/bolted_hil-9e4b8b6b482b3cb7.d: crates/hil/src/lib.rs

/root/repo/target/debug/deps/libbolted_hil-9e4b8b6b482b3cb7.rlib: crates/hil/src/lib.rs

/root/repo/target/debug/deps/libbolted_hil-9e4b8b6b482b3cb7.rmeta: crates/hil/src/lib.rs

crates/hil/src/lib.rs:
