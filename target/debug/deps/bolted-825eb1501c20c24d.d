/root/repo/target/debug/deps/bolted-825eb1501c20c24d.d: src/lib.rs

/root/repo/target/debug/deps/bolted-825eb1501c20c24d: src/lib.rs

src/lib.rs:
