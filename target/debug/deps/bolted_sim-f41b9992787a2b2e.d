/root/repo/target/debug/deps/bolted_sim-f41b9992787a2b2e.d: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libbolted_sim-f41b9992787a2b2e.rlib: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libbolted_sim-f41b9992787a2b2e.rmeta: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/executor.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
