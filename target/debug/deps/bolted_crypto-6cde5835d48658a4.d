/root/repo/target/debug/deps/bolted_crypto-6cde5835d48658a4.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/bignum.rs crates/crypto/src/chacha20.rs crates/crypto/src/cost.rs crates/crypto/src/ct.rs crates/crypto/src/hmac.rs crates/crypto/src/luks.rs crates/crypto/src/montgomery.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libbolted_crypto-6cde5835d48658a4.rlib: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/bignum.rs crates/crypto/src/chacha20.rs crates/crypto/src/cost.rs crates/crypto/src/ct.rs crates/crypto/src/hmac.rs crates/crypto/src/luks.rs crates/crypto/src/montgomery.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libbolted_crypto-6cde5835d48658a4.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/bignum.rs crates/crypto/src/chacha20.rs crates/crypto/src/cost.rs crates/crypto/src/ct.rs crates/crypto/src/hmac.rs crates/crypto/src/luks.rs crates/crypto/src/montgomery.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/bignum.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/cost.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/luks.rs:
crates/crypto/src/montgomery.rs:
crates/crypto/src/prime.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/sha256.rs:
