/root/repo/target/debug/deps/bolted_keylime-1d6d50b1461b79aa.d: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/debug/deps/libbolted_keylime-1d6d50b1461b79aa.rlib: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/debug/deps/libbolted_keylime-1d6d50b1461b79aa.rmeta: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

crates/keylime/src/lib.rs:
crates/keylime/src/agent.rs:
crates/keylime/src/ima.rs:
crates/keylime/src/payload.rs:
crates/keylime/src/registrar.rs:
crates/keylime/src/verifier.rs:
