/root/repo/target/debug/deps/bolted_bench-f2fb588fbed86592.d: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

/root/repo/target/debug/deps/bolted_bench-f2fb588fbed86592: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

crates/bench/src/lib.rs:
crates/bench/src/hotpath.rs:
