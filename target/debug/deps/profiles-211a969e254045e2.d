/root/repo/target/debug/deps/profiles-211a969e254045e2.d: tests/profiles.rs

/root/repo/target/debug/deps/profiles-211a969e254045e2: tests/profiles.rs

tests/profiles.rs:
