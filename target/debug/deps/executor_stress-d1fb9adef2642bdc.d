/root/repo/target/debug/deps/executor_stress-d1fb9adef2642bdc.d: crates/sim/tests/executor_stress.rs

/root/repo/target/debug/deps/executor_stress-d1fb9adef2642bdc: crates/sim/tests/executor_stress.rs

crates/sim/tests/executor_stress.rs:
