/root/repo/target/debug/deps/bolted_bench-8c93de55eff145c3.d: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

/root/repo/target/debug/deps/libbolted_bench-8c93de55eff145c3.rlib: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

/root/repo/target/debug/deps/libbolted_bench-8c93de55eff145c3.rmeta: crates/bench/src/lib.rs crates/bench/src/hotpath.rs

crates/bench/src/lib.rs:
crates/bench/src/hotpath.rs:
