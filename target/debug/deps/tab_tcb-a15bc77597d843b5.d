/root/repo/target/debug/deps/tab_tcb-a15bc77597d843b5.d: crates/bench/src/bin/tab_tcb.rs

/root/repo/target/debug/deps/tab_tcb-a15bc77597d843b5: crates/bench/src/bin/tab_tcb.rs

crates/bench/src/bin/tab_tcb.rs:
