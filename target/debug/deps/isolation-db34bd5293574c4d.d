/root/repo/target/debug/deps/isolation-db34bd5293574c4d.d: tests/isolation.rs

/root/repo/target/debug/deps/isolation-db34bd5293574c4d: tests/isolation.rs

tests/isolation.rs:
