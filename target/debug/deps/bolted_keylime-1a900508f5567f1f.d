/root/repo/target/debug/deps/bolted_keylime-1a900508f5567f1f.d: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

/root/repo/target/debug/deps/bolted_keylime-1a900508f5567f1f: crates/keylime/src/lib.rs crates/keylime/src/agent.rs crates/keylime/src/ima.rs crates/keylime/src/payload.rs crates/keylime/src/registrar.rs crates/keylime/src/verifier.rs

crates/keylime/src/lib.rs:
crates/keylime/src/agent.rs:
crates/keylime/src/ima.rs:
crates/keylime/src/payload.rs:
crates/keylime/src/registrar.rs:
crates/keylime/src/verifier.rs:
