/root/repo/target/debug/deps/bolted-ef1874c67d6c5663.d: src/lib.rs

/root/repo/target/debug/deps/libbolted-ef1874c67d6c5663.rlib: src/lib.rs

/root/repo/target/debug/deps/libbolted-ef1874c67d6c5663.rmeta: src/lib.rs

src/lib.rs:
