/root/repo/target/debug/deps/bolted_workloads-429abc83f4e82716.d: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

/root/repo/target/debug/deps/libbolted_workloads-429abc83f4e82716.rlib: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

/root/repo/target/debug/deps/libbolted_workloads-429abc83f4e82716.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cluster_net.rs crates/workloads/src/dd.rs crates/workloads/src/filebench.rs crates/workloads/src/kcompile.rs crates/workloads/src/npb.rs crates/workloads/src/terasort.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cluster_net.rs:
crates/workloads/src/dd.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/kcompile.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/terasort.rs:
