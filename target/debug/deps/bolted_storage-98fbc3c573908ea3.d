/root/repo/target/debug/deps/bolted_storage-98fbc3c573908ea3.d: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

/root/repo/target/debug/deps/libbolted_storage-98fbc3c573908ea3.rlib: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

/root/repo/target/debug/deps/libbolted_storage-98fbc3c573908ea3.rmeta: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

crates/storage/src/lib.rs:
crates/storage/src/cluster.rs:
crates/storage/src/image.rs:
crates/storage/src/iscsi.rs:
