/root/repo/target/debug/deps/bolted_firmware-9d08ecfec134d722.d: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

/root/repo/target/debug/deps/libbolted_firmware-9d08ecfec134d722.rlib: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

/root/repo/target/debug/deps/libbolted_firmware-9d08ecfec134d722.rmeta: crates/firmware/src/lib.rs crates/firmware/src/bootchain.rs crates/firmware/src/image.rs crates/firmware/src/machine.rs

crates/firmware/src/lib.rs:
crates/firmware/src/bootchain.rs:
crates/firmware/src/image.rs:
crates/firmware/src/machine.rs:
