/root/repo/target/debug/deps/threat_model-bc731faa2b8991cf.d: tests/threat_model.rs

/root/repo/target/debug/deps/threat_model-bc731faa2b8991cf: tests/threat_model.rs

tests/threat_model.rs:
