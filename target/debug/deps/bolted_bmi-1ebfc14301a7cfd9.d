/root/repo/target/debug/deps/bolted_bmi-1ebfc14301a7cfd9.d: crates/bmi/src/lib.rs

/root/repo/target/debug/deps/libbolted_bmi-1ebfc14301a7cfd9.rlib: crates/bmi/src/lib.rs

/root/repo/target/debug/deps/libbolted_bmi-1ebfc14301a7cfd9.rmeta: crates/bmi/src/lib.rs

crates/bmi/src/lib.rs:
