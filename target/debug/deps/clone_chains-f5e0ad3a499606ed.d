/root/repo/target/debug/deps/clone_chains-f5e0ad3a499606ed.d: crates/storage/tests/clone_chains.rs

/root/repo/target/debug/deps/clone_chains-f5e0ad3a499606ed: crates/storage/tests/clone_chains.rs

crates/storage/tests/clone_chains.rs:
