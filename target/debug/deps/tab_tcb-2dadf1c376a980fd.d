/root/repo/target/debug/deps/tab_tcb-2dadf1c376a980fd.d: crates/bench/src/bin/tab_tcb.rs

/root/repo/target/debug/deps/tab_tcb-2dadf1c376a980fd: crates/bench/src/bin/tab_tcb.rs

crates/bench/src/bin/tab_tcb.rs:
