/root/repo/target/debug/deps/hotpath-15b326af4e14b657.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-15b326af4e14b657: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
