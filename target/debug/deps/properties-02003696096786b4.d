/root/repo/target/debug/deps/properties-02003696096786b4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-02003696096786b4: tests/properties.rs

tests/properties.rs:
