/root/repo/target/debug/deps/hotpath-4a2c9e30e6ae8a37.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-4a2c9e30e6ae8a37: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
