/root/repo/target/debug/deps/ablations-c77e88c6e7d253e4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-c77e88c6e7d253e4: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
