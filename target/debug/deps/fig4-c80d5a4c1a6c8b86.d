/root/repo/target/debug/deps/fig4-c80d5a4c1a6c8b86.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c80d5a4c1a6c8b86: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
