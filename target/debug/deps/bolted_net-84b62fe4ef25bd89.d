/root/repo/target/debug/deps/bolted_net-84b62fe4ef25bd89.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

/root/repo/target/debug/deps/libbolted_net-84b62fe4ef25bd89.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

/root/repo/target/debug/deps/libbolted_net-84b62fe4ef25bd89.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/iperf.rs crates/net/src/ipsec.rs crates/net/src/link.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/iperf.rs:
crates/net/src/ipsec.rs:
crates/net/src/link.rs:
