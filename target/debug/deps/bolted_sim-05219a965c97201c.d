/root/repo/target/debug/deps/bolted_sim-05219a965c97201c.d: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/bolted_sim-05219a965c97201c: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/executor.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
