/root/repo/target/debug/deps/fig3b-fe5dea32f7ec30cb.d: crates/bench/src/bin/fig3b.rs

/root/repo/target/debug/deps/fig3b-fe5dea32f7ec30cb: crates/bench/src/bin/fig3b.rs

crates/bench/src/bin/fig3b.rs:
