/root/repo/target/debug/deps/fig4-dab4ea81cf241dc1.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-dab4ea81cf241dc1: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
