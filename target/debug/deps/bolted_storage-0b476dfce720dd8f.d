/root/repo/target/debug/deps/bolted_storage-0b476dfce720dd8f.d: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

/root/repo/target/debug/deps/bolted_storage-0b476dfce720dd8f: crates/storage/src/lib.rs crates/storage/src/cluster.rs crates/storage/src/image.rs crates/storage/src/iscsi.rs

crates/storage/src/lib.rs:
crates/storage/src/cluster.rs:
crates/storage/src/image.rs:
crates/storage/src/iscsi.rs:
