/root/repo/target/debug/deps/ablations-76d46719456b1591.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-76d46719456b1591: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
