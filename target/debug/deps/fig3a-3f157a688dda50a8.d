/root/repo/target/debug/deps/fig3a-3f157a688dda50a8.d: crates/bench/src/bin/fig3a.rs

/root/repo/target/debug/deps/fig3a-3f157a688dda50a8: crates/bench/src/bin/fig3a.rs

crates/bench/src/bin/fig3a.rs:
