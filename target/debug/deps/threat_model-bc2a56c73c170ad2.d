/root/repo/target/debug/deps/threat_model-bc2a56c73c170ad2.d: tests/threat_model.rs

/root/repo/target/debug/deps/threat_model-bc2a56c73c170ad2: tests/threat_model.rs

tests/threat_model.rs:
