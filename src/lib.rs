//! Bolted: a bare-metal cloud architecture for security-sensitive tenants.
//!
//! This is the umbrella crate; it re-exports every subsystem. See the
//! individual crates for details, and `examples/` for runnable scenarios.
#![forbid(unsafe_code)]

pub use bolted_bmi as bmi;
pub use bolted_core as core;
pub use bolted_crypto as crypto;
pub use bolted_firmware as firmware;
pub use bolted_hil as hil;
pub use bolted_keylime as keylime;
pub use bolted_net as net;
pub use bolted_sim as sim;
pub use bolted_storage as storage;
pub use bolted_tpm as tpm;
pub use bolted_workloads as workloads;
