//! Charlie's full story: a 4-node secure enclave with continuous
//! attestation, a running distributed workload, a compromise — and the
//! ~3-second cryptographic ban of the compromised node (§7.4).
//!
//! Run with: `cargo run --example secure_enclave`

use bolted::core::{revocation_experiment, Cloud, CloudConfig, Enclave, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::keylime::ImaWhitelist;
use bolted::sim::{Sim, SimDuration};

fn main() {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 4,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz + initramfs");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "ima_policy=tcb")
        .expect("golden image");

    // Charlie's runtime whitelist: the only binaries his nodes may run.
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant session");
    let mut wl = ImaWhitelist::new();
    wl.allow_content("/usr/bin/spark-executor", b"spark 2.3.1 executor");
    wl.allow_content("/usr/bin/java", b"openjdk 8");
    tenant.set_ima_whitelist(wl);

    println!("provisioning a 4-node attested enclave...");
    let enclave = sim.block_on({
        let (cloud2, tenant2) = (cloud.clone(), tenant.clone());
        async move {
            let mut members = Vec::new();
            for node in cloud2.nodes() {
                let p = tenant2
                    .provision(node, &SecurityProfile::charlie(), golden)
                    .await
                    .expect("attested provisioning");
                println!(
                    "  {} joined after {:.1}s",
                    p.report.node,
                    p.report.total().as_secs_f64()
                );
                members.push(p);
            }
            Enclave::form(&cloud2, members)
        }
    });
    println!(
        "enclave formed: {} nodes, IPsec mesh keyed via Keylime",
        enclave.len()
    );

    // Normal operation: encrypted traffic between members.
    let echoed = enclave
        .tunnel_send(0, 1, b"shuffle block 42")
        .expect("tunnel up");
    assert_eq!(echoed, b"shuffle block 42");

    // Legitimate binaries run without incident; then node 2 is popped.
    let enclave = std::sync::Arc::new(enclave);
    let report = sim.block_on({
        let (cloud2, tenant2) = (cloud.clone(), tenant.clone());
        let enclave2 = std::sync::Arc::clone(&enclave);
        async move {
            enclave2.members[0]
                .agent
                .as_ref()
                .expect("agent")
                .ima_measure("/usr/bin/java", b"openjdk 8");
            revocation_experiment(&cloud2, &tenant2, &enclave2, 2, SimDuration::from_secs(30)).await
        }
    });

    println!();
    println!(
        "node 2 executed an unwhitelisted binary at t={}",
        report.violation_at
    );
    println!(
        "  detected after  {:.2}s (continuous attestation poll + quote verify)",
        report.detection_latency().as_secs_f64()
    );
    println!(
        "  fully banned in {:.2}s (keys revoked, SAs torn down on every peer)",
        report.total_latency().as_secs_f64()
    );
    assert!(enclave.is_banned(2));
    assert!(enclave.tunnel_send(0, 2, b"anyone there?").is_err());
    assert!(enclave.tunnel_send(0, 1, b"still fine").is_ok());
    println!("node 2 is cryptographically isolated; the rest of the enclave is unaffected.");
}
