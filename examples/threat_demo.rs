//! Walks the §2 threat model phase by phase and shows each defence
//! firing — and what happens to a tenant who opted out.
//!
//! Run with: `cargo run --example threat_demo`

use bolted::core::{Cloud, CloudConfig, ProvisionError, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::net::TransferSpec;
use bolted::sim::Sim;

fn main() {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 3,
            ..CloudConfig::default()
        },
    );
    cloud.fabric.enable_taps();
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let nodes = cloud.nodes();

    println!("=== Threat 1 (prior to occupancy): infected firmware ===");
    let victim_node = nodes[0];
    let m = cloud.machine(victim_node);
    m.reflash(m.flash().tampered(b"SPI bootkit from the previous tenant"));
    let charlie = Tenant::new(&cloud, "charlie").expect("tenant");
    let result = sim.block_on({
        let charlie = charlie.clone();
        async move {
            charlie
                .provision(victim_node, &SecurityProfile::charlie(), golden)
                .await
        }
    });
    match result {
        Err(ProvisionError::Rejected(reason)) => {
            println!("  attestation REJECTED the node: {reason}");
            println!(
                "  node moved to the rejected pool: {:?}",
                cloud.rejected_pool()
            );
        }
        _ => unreachable!("tampered firmware must never pass attestation"),
    }

    println!();
    println!("=== Threat 2 (during occupancy): eavesdropping on enclave traffic ===");
    let p1 = sim
        .block_on({
            let charlie = charlie.clone();
            let node = nodes[1];
            async move {
                charlie
                    .provision(node, &SecurityProfile::charlie(), golden)
                    .await
            }
        })
        .expect("clean node provisions");
    let vlan = cloud
        .fabric
        .host_vlan(cloud.hil.node_host(p1.node).expect("host"))
        .expect("on the enclave VLAN");
    // Charlie's nodes encrypt before anything hits the wire.
    let (mut tx, _rx) = bolted::net::tunnel_pair(&p1.psk, bolted::crypto::CipherSuite::AesNi);
    let sealed = tx.seal(b"quarterly trading strategy").expect("seals");
    let host = cloud.hil.node_host(p1.node).expect("host");
    sim.block_on({
        let fabric = cloud.fabric.clone();
        let sealed = sealed.clone();
        async move {
            // Loop traffic to ourselves just to put bytes on the VLAN.
            fabric
                .send_msg(host, host, sealed, TransferSpec::plain())
                .await
                .ok();
        }
    });
    let tapped = cloud.fabric.tapped(vlan);
    let leaked = tapped
        .iter()
        .any(|frame| frame.windows(7).any(|w| w == b"trading"));
    println!(
        "  provider's tap captured {} frame(s); plaintext visible: {leaked}",
        tapped.len()
    );
    assert!(!leaked, "IPsec must hide tenant data from the wire");

    println!();
    println!("=== Threat 3 (after occupancy): RAM residue for the next tenant ===");
    // Charlie's node wrote key material to RAM. Release it and hand the
    // machine to another tenant.
    let machine = p1.machine.clone();
    machine.write_secret_to_ram("charlie", b"LUKS master key material");
    sim.block_on({
        let charlie = charlie.clone();
        async move { charlie.release(p1, false).await.expect("released") }
    });
    let eve = Tenant::new(&cloud, "eve").expect("tenant");
    let p2 = sim
        .block_on({
            let eve = eve.clone();
            let node = nodes[1];
            async move { eve.provision(node, &SecurityProfile::alice(), golden).await }
        })
        .expect("eve gets the same machine");
    match machine.ram_residue() {
        // After Eve's own kexec, RAM may hold *Eve's* fresh state — what
        // matters is that nothing of Charlie's survived the scrub.
        Some(r) if r.tenant == "charlie" => panic!("RAM residue leaked Charlie's secrets"),
        residue => {
            // lint: allow(L2-format: RamResidue.secret is the simulated leak
            // probe the demo exists to inspect, not live tenant key material)
            assert!(residue.as_ref().is_none_or(|r| r.secret.is_empty()));
            println!("  LinuxBoot scrubbed RAM before Eve's code ran: nothing to steal.");
        }
    }
    drop(p2);

    println!();
    println!("=== Contrast: what the same attack does to an unattested tenant ===");
    let m3 = cloud.machine(nodes[2]);
    m3.reflash(m3.flash().tampered(b"bootkit"));
    let alice = Tenant::new(&cloud, "alice").expect("tenant");
    let p3 = sim
        .block_on({
            let alice = alice.clone();
            let node = nodes[2];
            async move {
                alice
                    .provision(node, &SecurityProfile::alice(), golden)
                    .await
            }
        })
        .expect("alice boots right through it");
    println!(
        "  Alice's unattested node {} booted on TAMPERED firmware without noticing —",
        p3.report.node
    );
    println!("  exactly the residual risk she accepted in exchange for speed.");
}
