//! The paper's §4.3 use cases, side by side.
//!
//! * Alice (grad student): maximum speed, no attestation, no encryption.
//! * Bob (professor): doesn't trust other tenants; provider attestation.
//! * Charlie (security-sensitive): trusts nobody; tenant attestation,
//!   LUKS, IPsec, continuous attestation.
//!
//! Each pays only for the security they chose — the central Bolted claim.
//!
//! Run with: `cargo run --example alice_bob_charlie`

use bolted::core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::sim::Sim;

fn main() {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 3,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz + initramfs");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden image");

    let profiles = [
        ("alice", SecurityProfile::alice()),
        ("bob", SecurityProfile::bob()),
        ("charlie", SecurityProfile::charlie()),
    ];
    let nodes = cloud.nodes();

    let mut reports = Vec::new();
    for (i, (who, profile)) in profiles.into_iter().enumerate() {
        let tenant = Tenant::new(&cloud, who).expect("tenant session");
        let node = nodes[i];
        let p = sim
            .block_on({
                let tenant = tenant.clone();
                let profile = profile.clone();
                async move { tenant.provision(node, &profile, golden).await }
            })
            .expect("provisions");
        reports.push((who, profile, p));
    }

    println!("user      profile           total     attested  disk-enc  net-enc");
    println!("--------  ----------------  --------  --------  --------  -------");
    for (who, profile, p) in &reports {
        println!(
            "{:<8}  {:<16}  {:>7.1}s  {:<8}  {:<8}  {}",
            who,
            profile.name,
            p.report.total().as_secs_f64(),
            profile.attested(),
            profile.disk_encryption,
            profile.net_encryption,
        );
    }

    let alice = reports[0].2.report.total().as_secs_f64();
    let bob = reports[1].2.report.total().as_secs_f64();
    let charlie = reports[2].2.report.total().as_secs_f64();
    println!();
    println!(
        "Bob pays +{:.0}% for attestation; Charlie pays +{:.0}% for full control.",
        (bob / alice - 1.0) * 100.0,
        (charlie / alice - 1.0) * 100.0
    );
    println!("Alice pays nothing for security she did not ask for.");

    // And the enclaves are mutually isolated regardless of profile:
    let h0 = cloud.hil.node_host(nodes[0]).expect("host");
    let h2 = cloud.hil.node_host(nodes[2]).expect("host");
    assert!(cloud.fabric.path(h0, h2).is_err());
    println!("(verified: Alice's and Charlie's servers cannot exchange a single frame)");
}
