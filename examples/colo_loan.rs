//! The co-location use case (§4.3): two organisations in one facility
//! loan each other machines. The *lender* runs the isolation service;
//! the *borrower* brings its own attestation and provisioning, so it
//! never has to trust the lender with its software or data — "this use
//! case is, in fact, the primary one for which Bolted is going into
//! production".
//!
//! Run with: `cargo run --example colo_loan`

use bolted::core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::sim::Sim;

fn main() {
    let sim = Sim::new();
    // The lender's datacenter: an IaaS cloud with spare capacity.
    let lender_cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 4,
            ..CloudConfig::default()
        },
    );

    // The borrower (an HPC shop with a demand spike) registers its OWN
    // golden image with its OWN provisioning service — here expressed as
    // its own BMI instance over its own storage handles. Nothing about
    // the image or kernel is shared with the lender.
    let hpc_kernel = KernelImage::from_bytes("hpc-el8-lustre", b"borrower kernel + initrd");
    let hpc_golden = lender_cloud
        .bmi
        .create_golden("hpc-el8", 16 << 30, 99, &hpc_kernel, "hugepages=64G")
        .expect("borrower golden image");

    // The borrower acts as a tenant of the lender's HIL, attesting each
    // loaned machine against its own whitelist before trusting it.
    let borrower = Tenant::new(&lender_cloud, "hpc-org").expect("tenant session");
    println!("HPC org borrowing 2 machines from the IaaS org's free pool...");
    let nodes = lender_cloud.nodes();
    let loaned = sim.block_on({
        let borrower = borrower.clone();
        let nodes = nodes.clone();
        async move {
            let mut out = Vec::new();
            for &node in &nodes[..2] {
                out.push(
                    borrower
                        .provision(node, &SecurityProfile::charlie(), hpc_golden)
                        .await
                        .expect("attested loan"),
                );
            }
            out
        }
    });
    for p in &loaned {
        println!(
            "  loaned {} in {:.1}s — firmware attested against the borrower's own build",
            p.report.node,
            p.report.total().as_secs_f64()
        );
    }

    // The lender's own workloads keep running on the rest of the pool,
    // in a different enclave the borrower cannot reach.
    let lender_tenant = Tenant::new(&lender_cloud, "iaas-internal").expect("tenant");
    let internal_kernel = KernelImage::from_bytes("iaas-hypervisor", b"kvm stack");
    let internal_golden = lender_cloud
        .bmi
        .create_golden("iaas-node", 8 << 30, 7, &internal_kernel, "")
        .expect("golden");
    let internal = sim
        .block_on({
            let lender_tenant = lender_tenant.clone();
            let node = nodes[2];
            async move {
                lender_tenant
                    .provision(node, &SecurityProfile::bob(), internal_golden)
                    .await
            }
        })
        .expect("internal provisioning");
    println!(
        "  lender's own node {} provisioned alongside ({:.1}s)",
        internal.report.node,
        internal.report.total().as_secs_f64()
    );

    // Demand spike over: the loan is returned. Diskless provisioning
    // means there is nothing to scrub — release is instantaneous.
    let t0 = sim.now();
    sim.block_on({
        let borrower = borrower.clone();
        async move {
            for p in loaned {
                borrower.release(p, false).await.expect("released");
            }
        }
    });
    println!(
        "loan returned in {} (no disk scrubbing: state never touched local media)",
        sim.now().since(t0)
    );
    assert_eq!(lender_cloud.hil.free_nodes().len(), 3);

    // The borrower's traffic never shared a VLAN with the lender's.
    let borrowed_host = lender_cloud.hil.node_host(nodes[0]).expect("host");
    let lender_host = lender_cloud.hil.node_host(nodes[2]).expect("host");
    assert!(lender_cloud
        .fabric
        .path(borrowed_host, lender_host)
        .is_err());
    println!("verified: borrower and lender enclaves never shared a network.");
}
