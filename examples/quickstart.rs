//! Quickstart: provision one secure bare-metal server the Bolted way.
//!
//! Walks the Figure 1 life cycle for the paper's security-sensitive
//! tenant "Charlie": allocate → airlock → measured boot → remote
//! attestation → key bootstrap → enclave → kexec — and prints the same
//! per-phase timing breakdown as Figure 4.
//!
//! Run with: `cargo run --example quickstart`

use bolted::core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::sim::Sim;

fn main() {
    // A deterministic virtual datacenter: 4 machines with LinuxBoot in
    // flash, TPMs, a ToR switch, Ceph, and an iSCSI gateway.
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 4,
            ..CloudConfig::default()
        },
    );
    cloud.tracer.set_echo(true);

    // The provider (or the tenant!) registers a golden OS image.
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz + initramfs");
    let golden = cloud
        .bmi
        .create_golden(
            "fedora28",
            8 << 30,
            7,
            &kernel,
            "root=/dev/sda ima_policy=tcb",
        )
        .expect("golden image");

    // Charlie brings his own registrar + verifier and trusts the
    // provider only for isolation and availability.
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant session");
    let node = cloud.nodes()[0];

    let provisioned = sim
        .block_on({
            let tenant = tenant.clone();
            async move {
                tenant
                    .provision(node, &SecurityProfile::charlie(), golden)
                    .await
            }
        })
        .expect("attested provisioning");

    println!("\n=== Figure 4-style breakdown ===");
    print!("{}", provisioned.report.render());

    let payload = provisioned
        .agent
        .as_ref()
        .expect("attested profile has an agent")
        .payload()
        .expect("keys released after attestation");
    println!("\nKeys bootstrapped via the Keylime U/V split:");
    // Tenant-side demo code may read its own secret, but the passphrase
    // identifier must stay out of format-macro argument lists (lint L2),
    // so the length is taken before printing.
    let luks_pass_bytes = payload.luks_passphrase.expose().len();
    println!("  LUKS passphrase: {luks_pass_bytes} bytes");
    println!("  IPsec PSK:       {} bytes", payload.ipsec_psk.len());
    println!("\nLife cycle:");
    for (t, state) in provisioned.lifecycle.history() {
        println!("  [{t:>12}] {state:?}");
    }
    let (fetched, served) = provisioned.target.stats();
    println!(
        "\nDiskless boot: {:.0} MiB served, {:.0} MiB fetched from Ceph ({}% of the 8 GiB image)",
        served as f64 / (1 << 20) as f64,
        fetched as f64 / (1 << 20) as f64,
        fetched * 100 / (8 << 30)
    );
}
