//! Attestation-stack integration tests: key bootstrap, TPM sealing
//! across reboots, storage integrity, and traffic shaping — the
//! extension features layered on the paper's core flows.

use bolted::core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::net::TransferSpec;
use bolted::sim::Sim;
use bolted::storage::{ImageId, ObjectKey};
use bolted::tpm::TpmError;

fn build(nodes: usize) -> (Sim, Cloud, ImageId) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    (sim, cloud, golden)
}

#[test]
fn bootstrap_key_sealed_during_provisioning_survives_warm_reboot() {
    let (sim, cloud, golden) = build(1);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    let (agent, machine) = sim.block_on({
        let tenant = tenant.clone();
        async move {
            let p = tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
            (p.agent.clone().expect("agent"), p.machine.clone())
        }
    });
    // Warm reboot through the identical measured chain: firmware + the
    // same agent download measurement, then the sealed key recovers.
    machine.power_cycle();
    sim.block_on({
        let (sim2, machine) = (sim.clone(), machine.clone());
        async move {
            machine.run_firmware(&sim2).await.expect("boots");
            machine
                .measure_download("keylime-agent", bolted::keylime::agent_binary_digest())
                .expect("measures");
        }
    });
    let recovered = agent.recover_bootstrap().expect("sealed key recovers");
    assert_eq!(recovered.0.len(), 32);
}

#[test]
fn sealed_bootstrap_dies_with_firmware_tamper() {
    let (sim, cloud, golden) = build(1);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    let (agent, machine) = sim.block_on({
        let tenant = tenant.clone();
        async move {
            let p = tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
            (p.agent.clone().expect("agent"), p.machine.clone())
        }
    });
    machine.reflash(machine.flash().tampered(b"between-occupancy implant"));
    machine.power_cycle();
    sim.block_on({
        let (sim2, machine) = (sim.clone(), machine.clone());
        async move {
            machine.run_firmware(&sim2).await.expect("boots");
        }
    });
    assert_eq!(
        agent.recover_bootstrap().unwrap_err(),
        TpmError::PolicyMismatch,
        "tampered firmware cannot recover the tenant's keys"
    );
}

#[test]
fn storage_deep_scrub_detects_corruption_under_live_tenant() {
    let (sim, cloud, golden) = build(1);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    let (image, corrupted) = sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let p = tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
            // Tenant writes data, provider-side media corrupts it.
            p.target.write(0, b"ledger block 1").await.expect("writes");
            let key = ObjectKey {
                image: p.image,
                index: 0,
            };
            assert!(cloud.cluster.corrupt_object(key, 5));
            let corrupted = cloud.cluster.deep_scrub().await;
            (p.image, corrupted)
        }
    });
    assert_eq!(corrupted.len(), 1);
    assert_eq!(corrupted[0].image, image);
}

#[test]
fn osd_failure_does_not_take_down_a_booting_tenant() {
    let (sim, cloud, golden) = build(1);
    // One of the three OSD hosts dies before provisioning starts.
    cloud.cluster.fail_osd(2);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    let p = sim
        .block_on({
            let tenant = tenant.clone();
            async move {
                tenant
                    .provision(node, &SecurityProfile::charlie(), golden)
                    .await
            }
        })
        .expect("boots from surviving replicas");
    assert_eq!(p.report.node, "m620-01");
}

#[test]
fn shaped_traffic_is_uniform_on_the_wire() {
    let (sim, cloud, golden) = build(2);
    cloud.fabric.enable_taps();
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let nodes = cloud.nodes();
    sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        let nodes = nodes.clone();
        async move {
            let a = tenant
                .provision(nodes[0], &SecurityProfile::charlie(), golden)
                .await
                .expect("a");
            let b = tenant
                .provision(nodes[1], &SecurityProfile::charlie(), golden)
                .await
                .expect("b");
            let (ha, hb) = (
                cloud.hil.node_host(a.node).expect("host"),
                cloud.hil.node_host(b.node).expect("host"),
            );
            // Charlie shapes his traffic (§6): the provider's tap must not
            // be able to tell a 10-byte command from a 30 KiB record.
            let spec = TransferSpec::plain().shaped(64 * 1024);
            for msg in [vec![1u8; 10], vec![2u8; 30_000], vec![3u8; 60_000]] {
                cloud
                    .fabric
                    .send_msg(ha, hb, msg, spec)
                    .await
                    .expect("sends");
            }
        }
    });
    let vlan = cloud
        .fabric
        .host_vlan(cloud.hil.node_host(nodes[0]).expect("host"))
        .expect("vlan");
    let frames = cloud.fabric.tapped(vlan);
    assert_eq!(frames.len(), 3);
    assert!(
        frames.iter().all(|f| f.len() == 64 * 1024),
        "shaped frames must be indistinguishable by size"
    );
}
