//! Reconciler tests: diff-engine properties, convergent recovery, and
//! determinism of the sharded churn driver.
//!
//! The property tests pin the three contracts ISSUE 10 names for the
//! diff engine — plans are minimal, applying a plan twice is a no-op,
//! and rate-limited churn is deferred rather than dropped — and the
//! regression test pins the behaviour the reconciler was built for: a
//! permanently-faulted node that the pipeline abandoned back to Free is
//! re-claimed and converged once the fault clears, where the old
//! one-shot fleet call stayed one node short forever.

mod common;

use bolted::core::reconcile::apply_to_model;
use bolted::core::{
    diff, reconcile_fleet_parallel, DesiredState, ObservedState, OpBudget, ReconcileFleetSpec,
    ReconcileOp, ReconcilerConfig, SecurityProfile, Tenant, TenantReconciler,
};
use bolted::hil::NodeId;
use bolted::sim::fault::{ops, FaultPlan, FaultSpec};
use bolted::sim::Rng;

use common::world;

fn observed(held: &[usize], profile: &SecurityProfile, networks: usize) -> ObservedState {
    ObservedState {
        nodes: held
            .iter()
            .map(|&i| (NodeId(i), profile.name.clone()))
            .collect(),
        networks,
    }
}

#[test]
fn plans_are_minimal_across_the_state_grid() {
    // Sweep held-count x desired-count x networks: the plan must contain
    // exactly the deficit/surplus — never an op for a converged node —
    // and a converged pair must plan nothing at all.
    let charlie = SecurityProfile::charlie();
    for held in 0..6usize {
        for want in 0..6usize {
            for nets in 0..3usize {
                let obs = observed(&(0..held).collect::<Vec<_>>(), &charlie, 0);
                let desired = DesiredState {
                    profile: charlie.clone(),
                    node_count: want,
                    networks: nets,
                };
                let plan = diff(&desired, &obs);
                let releases = plan
                    .iter()
                    .filter(|o| matches!(o, ReconcileOp::Release { .. }))
                    .count();
                let provisions = plan
                    .iter()
                    .filter(|o| matches!(o, ReconcileOp::Provision))
                    .count();
                let networks = plan
                    .iter()
                    .filter(|o| matches!(o, ReconcileOp::CreateNetwork))
                    .count();
                assert_eq!(releases, held.saturating_sub(want), "{held}->{want}");
                assert_eq!(provisions, want.saturating_sub(held), "{held}->{want}");
                assert_eq!(networks, nets);
                if held == want && nets == 0 {
                    assert!(plan.is_empty(), "converged state must plan nothing");
                }
            }
        }
    }
}

#[test]
fn applying_a_plan_twice_is_a_no_op() {
    // Idempotence over a seeded sweep of random states, including
    // profile flips and free pools too small to fully converge: the
    // second application of the same plan must change nothing.
    let profiles = [SecurityProfile::charlie(), SecurityProfile::bob()];
    let mut rng = Rng::seed_from_u64(0x1D3A);
    for case in 0..200 {
        let have = &profiles[rng.gen_range(2) as usize];
        let want = &profiles[rng.gen_range(2) as usize];
        let held: Vec<usize> = (0..rng.gen_range(5) as usize).collect();
        let obs = observed(&held, have, rng.gen_range(2) as usize);
        let desired = DesiredState {
            profile: want.clone(),
            node_count: rng.gen_range(6) as usize,
            networks: rng.gen_range(3) as usize,
        };
        let mut free: Vec<NodeId> = (10..10 + rng.gen_range(7) as usize).map(NodeId).collect();
        let plan = diff(&desired, &obs);
        let once = apply_to_model(&obs, &desired, &plan, &mut free);
        let free_after_once = free.clone();
        let twice = apply_to_model(&once, &desired, &plan, &mut free);
        assert_eq!(once, twice, "case {case}: second application changed state");
        assert_eq!(free, free_after_once, "case {case}: free pool moved");
        // And when the pool sufficed, one application fully converges.
        if once.nodes.len() == desired.node_count {
            assert!(diff(&desired, &once).is_empty(), "case {case}");
        }
    }
}

#[test]
fn rate_limited_churn_is_deferred_never_dropped() {
    // A queue bound of 2 and a 2-op burst against a 6-node declaration:
    // convergence takes several ticks, the overflow is deferred, and the
    // drop counter stays at zero — rate limiting slows churn down, it
    // never loses desired state.
    let (sim, cloud, golden) = world().nodes(6).build();
    let tenant = Tenant::new(&cloud, "tenant-00").expect("tenant");
    let config = ReconcilerConfig {
        queue_capacity: 2,
        churn_rate_per_sec: 1.0,
        churn_burst: 2,
    };
    let desired = DesiredState::new(SecurityProfile::charlie(), 6);
    let mut rec = TenantReconciler::new(tenant, golden, desired, &config);
    let (ticks, stats, held) = sim.block_on(async move {
        let mut ticks = 0usize;
        while !rec.is_converged() && ticks < 16 {
            let mut budget = OpBudget::new(64);
            rec.tick(&mut budget).await;
            ticks += 1;
        }
        (ticks, rec.queue_stats(), rec.holdings().len())
    });
    assert_eq!(held, 6, "declaration must fully converge");
    assert!(
        ticks >= 3,
        "a 2-op burst cannot converge 6 nodes in {ticks} ticks"
    );
    assert_eq!(stats.dropped, 0, "rate limiting must never drop work");
    assert!(stats.deferred > 0, "overflow must be accounted as deferred");
}

#[test]
fn shard_budget_exhaustion_is_backpressure_not_loss() {
    // Two tenants sharing a 3-op budget per tick: the second tenant is
    // starved early, converges late, and nothing is dropped.
    let (sim, cloud, golden) = world().nodes(8).build();
    let config = ReconcilerConfig::default();
    let mut recs: Vec<TenantReconciler> = (0..2)
        .map(|t| {
            let tenant = Tenant::new(&cloud, &format!("tenant-{t:02}")).expect("tenant");
            TenantReconciler::new(
                tenant,
                golden,
                DesiredState::new(SecurityProfile::charlie(), 4),
                &config,
            )
        })
        .collect();
    let (ticks, dropped, held) = sim.block_on(async move {
        let mut ticks = 0usize;
        while recs.iter().any(|r| !r.is_converged()) && ticks < 16 {
            let mut budget = OpBudget::new(3);
            for rec in recs.iter_mut() {
                rec.tick(&mut budget).await;
            }
            ticks += 1;
        }
        let dropped: u64 = recs.iter().map(|r| r.queue_stats().dropped).sum();
        let held: Vec<usize> = recs.iter().map(|r| r.holdings().len()).collect();
        (ticks, dropped, held)
    });
    assert_eq!(held, vec![4, 4], "both tenants must converge");
    assert!(
        ticks >= 3,
        "a 3-op shard budget cannot converge 8 nodes in {ticks} ticks"
    );
    assert_eq!(dropped, 0, "budget exhaustion must defer, not drop");
}

#[test]
fn permanently_faulted_node_is_reconverged_by_the_reconciler() {
    // The regression ISSUE 10 pins. Old path: one fleet call abandons
    // the dead-BMC node back to Free and the tenant stays at n-1
    // forever. Reconciler path: the abandon is just a deficit at the
    // next tick — once the operator clears the fault, the loop re-claims
    // the node and converges with no dedicated recovery code.
    let plan = FaultPlan::seeded(11).with_target(ops::BMC_POWER, "m620-03", FaultSpec::permanent());
    let (sim, cloud, golden) = world().nodes(4).faults(plan).build();
    let tenant = Tenant::new(&cloud, "tenant-00").expect("tenant");
    let desired = DesiredState::new(SecurityProfile::charlie(), 4);
    let mut rec = TenantReconciler::new(tenant, golden, desired, &ReconcilerConfig::default());
    let faults = cloud.faults.clone();
    let (first, second, names) = sim.block_on(async move {
        let mut budget = OpBudget::new(64);
        let first = rec.tick(&mut budget).await;
        // The old abandon-only path ends here: 3 of 4 nodes, forever.
        faults.install(FaultPlan::none());
        let mut budget = OpBudget::new(64);
        let second = rec.tick(&mut budget).await;
        let mut names: Vec<String> = rec
            .holdings()
            .iter()
            .map(|p| p.report.node.clone())
            .collect();
        names.sort();
        (first, second, names)
    });
    assert_eq!(first.provisioned, 3);
    assert_eq!(first.provision_failed, 1, "the dead node must be abandoned");
    assert!(!first.converged);
    assert_eq!(second.provisioned, 1, "the abandoned node is re-claimed");
    assert_eq!(second.provision_failed, 0);
    assert!(second.converged, "desired state must be reached");
    assert_eq!(
        names,
        vec!["m620-01", "m620-02", "m620-03", "m620-04"],
        "the previously dead node is part of the converged holdings"
    );
}

#[test]
fn profile_flip_releases_and_reprovisions_to_convergence() {
    // Desired-state churn: flip a converged charlie tenant to bob. The
    // next ticks release every wrongly-profiled node and re-provision
    // under the new profile, ending converged.
    let (sim, cloud, golden) = world().nodes(3).build();
    let tenant = Tenant::new(&cloud, "tenant-00").expect("tenant");
    let mut rec = TenantReconciler::new(
        tenant,
        golden,
        DesiredState::new(SecurityProfile::charlie(), 3),
        &ReconcilerConfig::default(),
    );
    let (released, profile_names, converged) = sim.block_on(async move {
        let mut budget = OpBudget::new(64);
        rec.tick(&mut budget).await;
        rec.set_desired(DesiredState::new(SecurityProfile::bob(), 3));
        let mut released = 0usize;
        let mut ticks = 0usize;
        while !rec.is_converged() && ticks < 8 {
            let mut budget = OpBudget::new(64);
            released += rec.tick(&mut budget).await.released;
            ticks += 1;
        }
        let profiles: Vec<String> = rec
            .holdings()
            .iter()
            .map(|p| p.report.profile.clone())
            .collect();
        (released, profiles, rec.is_converged())
    });
    assert_eq!(released, 3, "every charlie node must be released");
    assert!(converged);
    assert_eq!(profile_names, vec!["bob-attested"; 3]);
}

#[test]
fn sharded_churn_run_is_converged_clean_and_worker_independent() {
    // End-to-end smoke of the parallel driver: seeded churn plus
    // injected flaky BMC faults, across 1 and 2 pool workers. The run
    // must converge every epoch, hold every isolation invariant, have
    // exercised the abandon->re-claim path, and produce byte-identical
    // digests at both worker counts.
    let spec = ReconcileFleetSpec::new(2, 12, 2, 2, 0xAD5E_0010);
    let one = reconcile_fleet_parallel(&spec, 1).expect("1-worker run");
    let two = reconcile_fleet_parallel(&spec, 2).expect("2-worker run");
    assert!(one.converged(), "every shard must converge every epoch");
    assert_eq!(one.violations(), Vec::<String>::new());
    assert!(
        one.total("provision_failed") > 0.0,
        "the injected faults must exercise abandon-to-Free recovery"
    );
    assert!(one.total("provision_ok") > 0.0);
    assert_eq!(one.digest(), two.digest(), "digest depends on worker count");
}
