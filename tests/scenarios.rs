//! Adversarial multi-tenant scenarios: hostile coexistence with
//! executable isolation bounds.
//!
//! Runs the six paper scenarios at smoke scale and asserts (1) every
//! isolation invariant and degradation bound holds, and (2) the whole
//! run — every measurement, span tree, metrics snapshot and check
//! verdict — is byte-identical at pool worker counts 1, 2 and 4 under a
//! fixed seed. The full-scale artifact lives in `results/scenarios.json`
//! (the `scenarios` bench bin).

use bolted::core::{paper_scenarios, runbook_replay, ScenarioScale};
use bolted::sim::run_scenarios;

#[test]
fn every_scenario_holds_its_isolation_invariants_and_bounds() {
    let report = run_scenarios(paper_scenarios(ScenarioScale::Smoke), 2);
    for outcome in &report.outcomes {
        for check in &outcome.checks {
            assert!(
                check.passed,
                "{}: {} check failed: {}",
                outcome.name, check.kind, check.detail
            );
        }
    }
    assert!(report.passed());
    assert_eq!(report.outcomes.len(), 6, "six paper scenarios");
}

#[test]
fn scenario_runs_are_byte_identical_across_worker_counts() {
    // The same determinism contract as fleet shards: each scenario's two
    // worlds are built and driven entirely inside one pool job, so the
    // pool's worker count decides wall-clock time and nothing else.
    let fingerprints: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&w| run_scenarios(paper_scenarios(ScenarioScale::Smoke), w).fingerprint())
        .collect();
    assert!(!fingerprints[0].is_empty());
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 workers diverged");
    assert_eq!(fingerprints[0], fingerprints[2], "1 vs 4 workers diverged");
}

#[test]
fn scenario_outcomes_carry_degradation_ratios_and_observability() {
    let outcome = runbook_replay(ScenarioScale::Smoke).run();
    assert!(outcome.passed(), "{:?}", outcome.checks);
    // The quantitative half of the harness: recovery time is measured
    // against the baseline, not just asserted abstractly.
    let recovery = outcome.ratio("recovery_seconds").expect("ratio");
    assert!(recovery > 0.0 && recovery.is_finite());
    // Both worlds shipped their full observability output, so a failing
    // scenario can be diagnosed from the outcome alone.
    assert!(outcome.hostile.spans.contains("provision"));
    assert!(outcome.hostile.metrics.contains("provision_outcomes"));
    assert!(outcome.baseline.get("world_error") == Some(0.0));
}
