//! Observability-layer integration tests: the span tree and metrics
//! registry must be (1) byte-deterministic under a seed, (2) an exact
//! ledger of retries and injected faults, and (3) silent when the
//! fault plan is empty — zero retry/fault counters, full op counters.

mod common;

use bolted::core::{provision_fleet_parallel, Cloud, FleetSpec, ProvisionError};
use bolted::sim::fault::{ops, FaultPlan, FaultSpec};
use bolted::sim::Sim;
use bolted::storage::ImageId;

use common::world;

/// Provisions the first `n` nodes and asserts every one came up.
fn provision_fleet(sim: &Sim, cloud: &Cloud, golden: ImageId, n: usize) {
    let report = common::provision_fleet(sim, cloud, golden, n);
    if let Some(f) = report.failed.first() {
        panic!("{}: {}", f.name, f.error);
    }
    assert_eq!(report.succeeded.len(), n);
}

// -- golden trace ------------------------------------------------------------

#[test]
fn same_seed_runs_produce_identical_spans_and_metrics() {
    // Two fresh clouds under the same seed, same fleet: the rendered
    // span tree and the metrics JSON must match byte for byte. This is
    // the contract that makes trace-driven tests trustworthy — any
    // nondeterminism in the instrumentation itself would show up here.
    let run = || {
        let (sim, cloud, golden) = world()
            .nodes(3)
            .faults(FaultPlan::seeded(0x0B5E_57A1))
            .build();
        provision_fleet(&sim, &cloud, golden, 3);
        (cloud.spans.render(), cloud.metrics.to_json())
    };
    let (spans_a, metrics_a) = run();
    let (spans_b, metrics_b) = run();
    assert!(!spans_a.is_empty(), "spans must be recorded");
    assert!(metrics_a.contains("provision_outcomes"), "{metrics_a}");
    assert_eq!(spans_a, spans_b, "span trees diverged under one seed");
    assert_eq!(metrics_a, metrics_b, "metrics diverged under one seed");
}

#[test]
fn span_tree_nests_phases_under_the_provision_root() {
    let (sim, cloud, golden) = world().build();
    provision_fleet(&sim, &cloud, golden, 1);
    let root = cloud.spans.find("provision", "m620-01").expect("root span");
    assert_eq!(root.attr("outcome"), Some("ok"));
    assert_eq!(root.attr("profile"), Some("charlie-full"));
    assert!(root.is_closed());
    let children = cloud.spans.children(root.id);
    let names: Vec<&str> = children.iter().map(|c| c.name).collect();
    for phase in [
        "power-cycle",
        "firmware",
        "registrar",
        "quote-verify",
        "iscsi-attach",
        "luks-unlock",
    ] {
        assert!(names.contains(&phase), "missing child {phase}: {names:?}");
    }
    // Every phase closed, inside the root's window.
    for c in &children {
        assert!(c.is_closed(), "{} left open", c.name);
        assert!(c.seq > root.seq);
        assert!(c.end_seq.unwrap() < root.end_seq.unwrap());
    }
    // The phase histogram saw every closed tenant phase.
    let h = cloud
        .metrics
        .histogram("provision_phase_seconds", &[("phase", "firmware")])
        .expect("histogram");
    assert_eq!(h.stats.count(), 1);
}

#[test]
fn multi_threaded_fleet_runs_are_byte_identical_across_worker_counts() {
    // The multi-core path: the same FleetSpec driven through the
    // work-stealing pool at 1, 2 and 4 workers — plus a repeat run at 4 —
    // must produce byte-identical per-shard span trees and metrics
    // snapshots, and therefore equal whole-run digests. Worker count is
    // scheduling only; every observable byte is a function of the spec.
    let spec = FleetSpec::new(3, 2, 0x0B5E_57A1);
    let runs: Vec<_> = [1, 2, 4, 4]
        .iter()
        .map(|&w| provision_fleet_parallel(&spec, w).expect("fleet run"))
        .collect();
    let first = &runs[0];
    assert_eq!(first.ok(), spec.total_nodes());
    assert_eq!(first.failed(), 0);
    assert!(!first.shards[0].spans.is_empty(), "spans must be recorded");
    assert!(first.shards[0].metrics.contains("provision_outcomes"));
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(run.shards.len(), first.shards.len());
        for (a, b) in first.shards.iter().zip(&run.shards) {
            assert_eq!(
                a.spans, b.spans,
                "shard {} spans diverged in run {i}",
                a.shard
            );
            assert_eq!(
                a.metrics, b.metrics,
                "shard {} metrics diverged in run {i}",
                a.shard
            );
            assert_eq!((a.ok, a.failed), (b.ok, b.failed));
        }
        assert_eq!(first.digest(), run.digest(), "run {i} digest diverged");
    }
}

// -- retry / fault accounting ------------------------------------------------

#[test]
fn fault_plan_counts_land_exactly_per_op_and_target() {
    // m620-01's BMC flaps twice; m620-02's registrar and quote rounds
    // flap. Every injected fault and every re-attempt must land in the
    // registry under the right (op, target) pair — no more, no less.
    let plan = FaultPlan::seeded(0xACC7)
        .with_target(ops::BMC_POWER, "m620-01", FaultSpec::flaky(2))
        .with_target(ops::REGISTRAR_REGISTER, "m620-02", FaultSpec::flaky(2))
        .with_target(ops::VERIFIER_QUOTE, "m620-02", FaultSpec::flaky(2));
    let (sim, cloud, golden) = world().nodes(2).faults(plan).build();
    provision_fleet(&sim, &cloud, golden, 2);

    let c = |name: &str, op: &str, target: &str| {
        cloud
            .metrics
            .counter(name, &[("op", op), ("target", target)])
    };
    // BMC: both faults burn inside the retry loop, so re-attempts ==
    // injected faults.
    assert_eq!(c("faults_injected", ops::BMC_POWER, "m620-01"), 2);
    assert_eq!(c("retry_attempts", "hil.power_cycle", "m620-01"), 2);
    // Registration runs its first try inline (off the tenant RNG) and
    // only enters the retry loop after that fails: fault #1 hits the
    // inline try, fault #2 the loop's own first attempt, so exactly one
    // loop-around is recorded.
    assert_eq!(c("faults_injected", ops::REGISTRAR_REGISTER, "m620-02"), 2);
    assert_eq!(c("retry_attempts", "keylime.register", "m620-02"), 1);
    // Quote round-trips retry wholly inside the verifier.
    assert_eq!(c("faults_injected", ops::VERIFIER_QUOTE, "m620-02"), 2);
    assert_eq!(c("retry_attempts", "verifier.quote", "m620-02"), 2);
    // Nothing bled onto the unfaulted node.
    assert_eq!(c("faults_injected", ops::BMC_POWER, "m620-02"), 0);
    assert_eq!(c("retry_attempts", "hil.power_cycle", "m620-02"), 0);
    // Registry totals agree with the fault layer's own ledger.
    assert_eq!(
        cloud.metrics.counter_total("faults_injected"),
        cloud.faults.total_injected()
    );
}

#[test]
fn empty_fault_plan_means_zero_retry_and_fault_counters() {
    let (sim, cloud, golden) = world().nodes(2).build();
    provision_fleet(&sim, &cloud, golden, 2);
    assert_eq!(cloud.metrics.counter_total("retry_attempts"), 0);
    assert_eq!(cloud.metrics.counter_total("faults_injected"), 0);
    // ...while the op counters still tell the full story.
    assert!(cloud.metrics.counter_total("bmc_power_ops") >= 2);
    assert!(cloud.metrics.counter_total("switch_vlan_sets") > 0);
    assert!(cloud.metrics.counter_total("storage_read_ops") > 0);
    assert!(cloud.metrics.counter_total("hil_ops") > 0);
    assert_eq!(cloud.metrics.counter_total("key_releases"), 2);
    assert_eq!(
        cloud.metrics.counter(
            "provision_outcomes",
            &[("profile", "charlie-full"), ("outcome", "ok"),]
        ),
        2
    );
}

#[test]
fn abandoned_node_is_an_exhausted_outcome_in_the_registry() {
    // A permanently dead BMC: the node is released, the fleet call
    // reports it, and the registry shows one exhausted outcome next to
    // the successes.
    let plan = FaultPlan::seeded(7).with_target(ops::BMC_POWER, "m620-02", FaultSpec::permanent());
    let (sim, cloud, golden) = world().nodes(2).faults(plan).build();
    let report = common::provision_fleet(&sim, &cloud, golden, 2);
    assert_eq!(report.succeeded.len(), 1);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.failed[0].name, "m620-02");
    assert!(matches!(
        report.failed[0].error,
        ProvisionError::Exhausted { .. }
    ));
    let outcome = |o: &str| {
        cloud.metrics.counter(
            "provision_outcomes",
            &[("profile", "charlie-full"), ("outcome", o)],
        )
    };
    assert_eq!(outcome("ok"), 1);
    assert_eq!(outcome("exhausted"), 1);
    // The failed node's root span still closed, with the right verdict.
    let root = cloud.spans.find("provision", "m620-02").expect("root");
    assert!(root.is_closed());
    assert_eq!(root.attr("outcome"), Some("exhausted"));
}
