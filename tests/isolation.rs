//! Isolation invariants across the full stack: VLAN separation, airlock
//! behaviour, and HIL's authority boundaries.

use bolted::core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted::firmware::KernelImage;
use bolted::net::TransferSpec;
use bolted::sim::{join_all, Sim};
use bolted::storage::ImageId;

fn build(nodes: usize) -> (Sim, Cloud, ImageId) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    (sim, cloud, golden)
}

#[test]
fn no_frame_ever_crosses_tenant_boundaries() {
    // Provision three tenants, two nodes each, then try every cross-tenant
    // pair in both directions: all must be dropped; all intra-tenant
    // pairs must work.
    let (sim, cloud, golden) = build(6);
    let tenants: Vec<Tenant> = ["t-red", "t-green", "t-blue"]
        .iter()
        .map(|p| Tenant::new(&cloud, p).expect("tenant"))
        .collect();
    let nodes = cloud.nodes();
    sim.block_on({
        let tenants = tenants.clone();
        let nodes = nodes.clone();
        async move {
            for (i, t) in tenants.iter().enumerate() {
                for j in 0..2 {
                    t.provision(nodes[i * 2 + j], &SecurityProfile::alice(), golden)
                        .await
                        .expect("provisions");
                }
            }
        }
    });
    let host = |i: usize| cloud.hil.node_host(nodes[i]).expect("host");
    for a in 0..6 {
        for b in 0..6 {
            if a == b {
                continue;
            }
            let same_tenant = a / 2 == b / 2;
            let ok = sim
                .block_on({
                    let fabric = cloud.fabric.clone();
                    let (ha, hb) = (host(a), host(b));
                    async move { fabric.transfer(ha, hb, 1024, TransferSpec::plain()).await }
                })
                .is_ok();
            assert_eq!(
                ok,
                same_tenant,
                "path {a}->{b} (same tenant: {same_tenant}) must be {}",
                if same_tenant { "open" } else { "closed" }
            );
        }
    }
}

#[test]
fn airlock_nodes_cannot_reach_tenant_enclave() {
    // While a node sits in the airlock being attested, it must not be
    // able to reach already-trusted enclave members.
    let (sim, cloud, golden) = build(2);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let nodes = cloud.nodes();
    sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        let nodes = nodes.clone();
        async move {
            // First node fully provisioned into the enclave.
            tenant
                .provision(nodes[0], &SecurityProfile::charlie(), golden)
                .await
                .expect("first node");
            // Second node starts provisioning; capture reachability while
            // it is mid-airlock by probing from a parallel task.
            let h0 = cloud.hil.node_host(nodes[0]).expect("host");
            let h1 = cloud.hil.node_host(nodes[1]).expect("host");
            let fabric = cloud.fabric.clone();
            let sim2 = cloud.sim.clone();
            let probe = cloud.sim.spawn(async move {
                // Probe every second; record when the path first opens.
                for _ in 0..600 {
                    sim2.sleep(bolted::sim::SimDuration::from_secs(1)).await;
                    if fabric.path(h1, h0).is_ok() {
                        return Some(sim2.now());
                    }
                }
                None
            });
            let p2 = tenant
                .provision(nodes[1], &SecurityProfile::charlie(), golden)
                .await
                .expect("second node");
            let first_reachable = probe.await.expect("eventually joins the enclave");
            // The node may only become reachable once it left the airlock,
            // i.e. at/after the start of its network-move phase (which
            // follows attestation).
            let network_move = p2.report.phase("network-move").expect("phase");
            let kernel_boot = p2.report.phase("kernel-boot").expect("phase");
            let attest_done = p2.report.finished - kernel_boot - network_move;
            assert!(
                first_reachable >= attest_done,
                "enclave reachable at {first_reachable}, before attestation finished at {attest_done}"
            );
            // After provisioning both are in the enclave and can talk.
            assert!(cloud.fabric.path(h1, h0).is_ok());
        }
    });
}

#[test]
fn concurrent_multi_tenant_provisioning_stays_isolated() {
    let (sim, cloud, golden) = build(8);
    let t1 = Tenant::new(&cloud, "org-a").expect("tenant");
    let t2 = Tenant::new(&cloud, "org-b").expect("tenant");
    let nodes = cloud.nodes();
    sim.block_on({
        let (t1, t2, cloud) = (t1.clone(), t2.clone(), cloud.clone());
        let nodes = nodes.clone();
        async move {
            let mut handles = Vec::new();
            for (i, &node) in nodes.iter().enumerate() {
                let t = if i % 2 == 0 { t1.clone() } else { t2.clone() };
                handles.push(cloud.sim.spawn(async move {
                    t.provision(node, &SecurityProfile::bob(), golden)
                        .await
                        .expect("provisions")
                }));
            }
            join_all(handles).await;
        }
    });
    // Interleaved provisioning must still produce two disjoint enclaves.
    let host = |i: usize| cloud.hil.node_host(nodes[i]).expect("host");
    assert!(
        cloud.fabric.path(host(0), host(2)).is_ok(),
        "org-a internal"
    );
    assert!(
        cloud.fabric.path(host(1), host(3)).is_ok(),
        "org-b internal"
    );
    assert!(cloud.fabric.path(host(0), host(1)).is_err(), "cross-org");
    assert_eq!(
        cloud.fabric.isolation_violations(),
        0,
        "no leaks during boot"
    );
}

#[test]
fn hil_authority_is_scoped_to_owners() {
    let (sim, cloud, golden) = build(2);
    let owner = Tenant::new(&cloud, "owner").expect("tenant");
    let node = cloud.nodes()[0];
    sim.block_on({
        let owner = owner.clone();
        async move {
            owner
                .provision(node, &SecurityProfile::alice(), golden)
                .await
                .expect("provisions");
        }
    });
    // Another project cannot manipulate the node through HIL.
    assert!(cloud.hil.power_cycle("intruder", node).is_err());
    assert!(cloud.hil.detach_node("intruder", node).is_err());
    assert!(cloud.hil.free_node("intruder", node).is_err());
    // But HIL metadata reads are public by design (EK distribution).
    assert!(cloud.hil.node_metadata(node).is_ok());
}

#[test]
fn audit_log_covers_every_privileged_operation() {
    let (sim, cloud, golden) = build(1);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    sim.block_on({
        let tenant = tenant.clone();
        async move {
            let p = tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
            tenant.release(p, false).await.expect("releases");
        }
    });
    let log = cloud.hil.audit_log();
    for needle in [
        "register node m620-01",
        "allocate m620-01 -> charlie",
        "create network charlie-enclave",
        "connect m620-01",
        "power-cycle node 0",
        "free m620-01 (was charlie)",
    ] {
        assert!(
            log.iter().any(|l| l.contains(needle)),
            "audit log missing {needle:?}; log: {log:#?}"
        );
    }
}
