//! Randomized property tests on the core data structures and the security
//! invariants DESIGN.md calls out.
//!
//! These were originally written with proptest; the offline build cannot
//! reach a registry, so they now run as deterministic randomized loops over
//! a seeded xorshift source. Each property keeps the same invariant and a
//! comparable number of cases (64 per property unless noted).

use bolted::crypto::bignum::BigUint;
use bolted::crypto::chacha20::{chacha20_encrypt, Key};
use bolted::crypto::luks::{BlockDevice, LuksDevice, RamDisk, SECTOR_SIZE};
use bolted::crypto::prime::{RandomSource, XorShiftSource};
use bolted::crypto::sha256::{sha256, Sha256};
use bolted::crypto::Aead;
use bolted::keylime::{combine_key, split_key, ImaLog, TenantPayload};
use bolted::sim::{Resource, Rng, Sim, SimDuration};
use bolted::tpm::{PcrBank, Tpm};

const CASES: usize = 64;

/// Deterministic generator wrapping the crypto crate's xorshift source.
struct Gen(XorShiftSource);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(XorShiftSource::new(seed))
    }

    fn u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform-enough value in `[0, bound)` for test-case shaping.
    fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.u64() % bound as u64) as usize
    }

    /// Random byte vector with length in `[min, max)`.
    fn bytes(&mut self, min: usize, max: usize) -> Vec<u8> {
        let len = min + self.below((max - min).max(1));
        let mut buf = vec![0u8; len];
        self.0.fill_bytes(&mut buf);
        buf
    }

    fn array32(&mut self) -> [u8; 32] {
        let mut buf = [0u8; 32];
        self.0.fill_bytes(&mut buf);
        buf
    }

    fn array12(&mut self) -> [u8; 12] {
        let mut buf = [0u8; 12];
        self.0.fill_bytes(&mut buf);
        buf
    }

    /// ASCII string drawn from `alphabet` with length in `[min, max)`.
    fn string(&mut self, alphabet: &[u8], min: usize, max: usize) -> String {
        let len = min + self.below((max - min).max(1));
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len())] as char)
            .collect()
    }
}

// -- hashing ---------------------------------------------------------------

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut g = Gen::new(0x5A11);
    for _ in 0..CASES {
        let data = g.bytes(0, 4096);
        let split = g.below(4096).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data));
    }
}

#[test]
fn sha256_injective_in_practice() {
    let mut g = Gen::new(0x5A12);
    for _ in 0..CASES {
        let a = g.bytes(0, 256);
        let b = g.bytes(0, 256);
        if a != b {
            assert_ne!(sha256(&a), sha256(&b));
        }
    }
}

// -- bignum ----------------------------------------------------------------

#[test]
fn bignum_add_sub_round_trip() {
    let mut g = Gen::new(0xB1601);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&g.bytes(0, 24));
        let y = BigUint::from_bytes_be(&g.bytes(0, 24));
        assert_eq!(x.add(&y).sub(&y), x);
    }
}

#[test]
fn bignum_mul_matches_u128() {
    let mut g = Gen::new(0xB1602);
    for _ in 0..CASES {
        let a = g.u64();
        let b = g.u64();
        let expect = u128::from(a) * u128::from(b);
        let got = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let mut bytes = expect.to_be_bytes().to_vec();
        while bytes.first() == Some(&0) {
            bytes.remove(0);
        }
        assert_eq!(got.to_bytes_be(), bytes);
    }
}

#[test]
fn bignum_divrem_identity() {
    let mut g = Gen::new(0xB1603);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&g.bytes(1, 28));
        let mut y = BigUint::from_bytes_be(&g.bytes(1, 14));
        if y.is_zero() {
            y = BigUint::one();
        }
        let (q, r) = x.divrem(&y);
        assert!(r < y);
        assert_eq!(q.mul(&y).add(&r), x);
    }
}

#[test]
fn bignum_byte_round_trip() {
    let mut g = Gen::new(0xB1604);
    for _ in 0..CASES {
        // No leading zero byte, so the round trip is exact.
        let mut a = g.bytes(0, 32);
        for b in &mut a {
            if *b == 0 {
                *b = 1;
            }
        }
        let x = BigUint::from_bytes_be(&a);
        assert_eq!(x.to_bytes_be(), a);
    }
}

#[test]
fn bignum_shifts_invert() {
    let mut g = Gen::new(0xB1605);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&g.bytes(0, 16));
        let s = g.below(100);
        assert_eq!(x.shl(s).shr(s), x);
    }
}

// -- ciphers ---------------------------------------------------------------

#[test]
fn chacha20_round_trips() {
    let mut g = Gen::new(0xC4A01);
    for _ in 0..CASES {
        let k = Key(g.array32());
        let nonce = g.array12();
        let data = g.bytes(0, 2048);
        let ct = chacha20_encrypt(&k, &nonce, 1, &data);
        assert_eq!(chacha20_encrypt(&k, &nonce, 1, &ct), data);
    }
}

#[test]
fn aead_round_trips_and_rejects_tamper() {
    let mut g = Gen::new(0xC4A02);
    for _ in 0..CASES {
        let aead = Aead::new(&Key(g.array32()));
        let nonce = g.array12();
        let aad = g.bytes(0, 64);
        let data = g.bytes(0, 512);
        let sealed = aead.seal(&nonce, &aad, &data);
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), data);
        // Any single-byte change (with a non-zero xor) must fail.
        let pos = g.below(1 << 16);
        let mask = (g.u64() & 0xFF) as u8;
        if mask != 0 && !sealed.is_empty() {
            let mut bad = sealed.clone();
            let i = pos % bad.len();
            bad[i] ^= mask;
            assert!(aead.open(&nonce, &aad, &bad).is_err());
        }
    }
}

// -- LUKS ------------------------------------------------------------------

#[test]
fn luks_round_trips_any_sector() {
    let mut g = Gen::new(0x1045);
    // Fewer cases: each formats a device (passphrase KDF dominates).
    for _ in 0..16 {
        let pass = g.bytes(1, 32);
        let sector = g.u64() % 50;
        let data = g.bytes(SECTOR_SIZE, SECTOR_SIZE + 1);
        let mut rng = XorShiftSource::new(7);
        let mut luks = LuksDevice::format(RamDisk::new(64), &pass, &mut rng).unwrap();
        luks.write_sector(sector, &data).unwrap();
        let mut buf = [0u8; SECTOR_SIZE];
        luks.read_sector(sector, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..]);
        // Ciphertext at rest differs from plaintext (unless astronomically unlucky).
        let raw = luks.into_inner();
        let mut on_disk = [0u8; SECTOR_SIZE];
        raw.read_sector(sector + bolted::crypto::luks::HEADER_SECTORS, &mut on_disk)
            .unwrap();
        assert_ne!(&on_disk[..], &data[..]);
    }
}

// -- key split -------------------------------------------------------------

#[test]
fn uv_split_always_recombines() {
    let mut g = Gen::new(0x0521);
    for _ in 0..CASES {
        let key = g.array32();
        let mut rng = XorShiftSource::new(g.u64());
        let k = Key(key);
        let (u, v) = split_key(&k, &mut rng);
        assert_eq!(combine_key(&u, &v).0, key);
        // Neither share equals the key (w.h.p. — the share is random).
        assert!(*u.expose() != key || *v.expose() == [0u8; 32]);
    }
}

#[test]
fn payload_codec_round_trips() {
    let mut g = Gen::new(0x0522);
    for _ in 0..CASES {
        let name = g.string(b"abcdefghijklmnopqrstuvwxyz0123456789.-", 1, 32);
        let printable: Vec<u8> = (b' '..=b'~').collect();
        let cmdline = g.string(&printable, 0, 64);
        let p = TenantPayload {
            kernel_name: name,
            kernel_digest: sha256(b"k"),
            kernel_size: g.u64(),
            cmdline,
            luks_passphrase: bolted_crypto::secret::Secret::named(
                "luks_passphrase",
                g.bytes(0, 64),
            ),
            ipsec_psk: g.bytes(0, 64),
            script: "kexec".into(),
        };
        let k = Key(g.array32());
        assert_eq!(TenantPayload::open(&p.seal(&k), &k).unwrap(), p);
    }
}

// -- TPM / IMA -------------------------------------------------------------

#[test]
fn pcr_extends_never_collide_with_reorder() {
    let mut g = Gen::new(0x7B301);
    for _ in 0..CASES {
        // Extending a permuted sequence yields a different PCR value
        // unless the permutation is the identity.
        let count = 2 + g.below(4);
        let ms: Vec<Vec<u8>> = (0..count).map(|_| g.bytes(1, 16)).collect();
        let mut fwd = PcrBank::new();
        for m in &ms {
            fwd.extend(0, &sha256(m));
        }
        let mut rev = PcrBank::new();
        for m in ms.iter().rev() {
            rev.extend(0, &sha256(m));
        }
        let palindrome = ms.iter().eq(ms.iter().rev());
        if !palindrome {
            assert_ne!(fwd.read(0), rev.read(0));
        }
    }
}

#[test]
fn ima_log_replay_always_matches_live_pcr() {
    let mut g = Gen::new(0x7B302);
    for _ in 0..CASES {
        let count = g.below(20);
        let files: Vec<(String, Vec<u8>)> = (0..count)
            .map(|_| {
                (
                    g.string(b"abcdefghijklmnopqrstuvwxyz/", 1, 20),
                    g.bytes(0, 64),
                )
            })
            .collect();
        let mut tpm = Tpm::new(5, 512);
        let mut log = ImaLog::new();
        for (path, content) in &files {
            log.measure(&mut tpm, path, content);
        }
        assert_eq!(log.replay_pcr(), tpm.pcr_read(bolted::tpm::index::IMA));
    }
}

// -- simulator -------------------------------------------------------------

#[test]
fn sim_resource_conserves_work() {
    let mut g = Gen::new(0x51_01);
    for _ in 0..CASES {
        // Total busy time on a FIFO resource equals the sum of service
        // times when all jobs arrive at t=0 (work conservation): the
        // makespan is bounded by ceil-scheduling bounds.
        let count = 1 + g.below(39);
        let jobs: Vec<u64> = (0..count).map(|_| 1 + g.u64() % 199).collect();
        let capacity = 1 + g.below(7);
        let sim = Sim::new();
        let res = Resource::new(&sim, capacity);
        let total: u64 = jobs.iter().sum();
        let max = *jobs.iter().max().unwrap();
        for ms in jobs.clone() {
            let r = res.clone();
            sim.spawn(async move { r.visit(SimDuration::from_millis(ms)).await });
        }
        assert_eq!(sim.run(), 0);
        let makespan = sim.now().as_nanos() / 1_000_000;
        let lower = (total.div_ceil(capacity as u64)).max(max);
        assert!(
            makespan >= lower,
            "makespan {makespan} < lower bound {lower}"
        );
        assert!(
            makespan <= total,
            "makespan {makespan} > serial time {total}"
        );
    }
}

#[test]
fn sim_rng_reproducible() {
    let mut g = Gen::new(0x51_02);
    for _ in 0..CASES {
        let seed = g.u64();
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn sim_rng_range_bounds() {
    let mut g = Gen::new(0x51_03);
    for _ in 0..CASES {
        let bound = 1 + g.u64() % 999_999;
        let mut r = Rng::seed_from_u64(g.u64());
        for _ in 0..32 {
            assert!(r.gen_range(bound) < bound);
        }
    }
}
