//! Property-based tests (proptest) on the core data structures and the
//! security invariants DESIGN.md calls out.

use proptest::prelude::*;

use bolted::crypto::bignum::BigUint;
use bolted::crypto::chacha20::{chacha20_encrypt, Key};
use bolted::crypto::luks::{BlockDevice, LuksDevice, RamDisk, SECTOR_SIZE};
use bolted::crypto::prime::XorShiftSource;
use bolted::crypto::sha256::{sha256, Sha256};
use bolted::crypto::Aead;
use bolted::keylime::{combine_key, split_key, ImaLog, TenantPayload};
use bolted::sim::{Resource, Rng, Sim, SimDuration};
use bolted::tpm::{PcrBank, Tpm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -- hashing ---------------------------------------------------------

    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_injective_in_practice(a in prop::collection::vec(any::<u8>(), 0..256),
                                    b in prop::collection::vec(any::<u8>(), 0..256)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    // -- bignum ------------------------------------------------------------

    #[test]
    fn bignum_add_sub_round_trip(a in prop::collection::vec(any::<u8>(), 0..24),
                                 b in prop::collection::vec(any::<u8>(), 0..24)) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        prop_assert_eq!(x.add(&y).sub(&y), x);
    }

    #[test]
    fn bignum_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = u128::from(a) * u128::from(b);
        let got = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let mut bytes = expect.to_be_bytes().to_vec();
        while bytes.first() == Some(&0) { bytes.remove(0); }
        prop_assert_eq!(got.to_bytes_be(), bytes);
    }

    #[test]
    fn bignum_divrem_identity(a in prop::collection::vec(any::<u8>(), 1..28),
                              b in prop::collection::vec(any::<u8>(), 1..14)) {
        let x = BigUint::from_bytes_be(&a);
        let mut y = BigUint::from_bytes_be(&b);
        if y.is_zero() { y = BigUint::one(); }
        let (q, r) = x.divrem(&y);
        prop_assert!(r < y);
        prop_assert_eq!(q.mul(&y).add(&r), x);
    }

    #[test]
    fn bignum_byte_round_trip(a in prop::collection::vec(1u8..=255, 0..32)) {
        let x = BigUint::from_bytes_be(&a);
        prop_assert_eq!(x.to_bytes_be(), a);
    }

    #[test]
    fn bignum_shifts_invert(a in prop::collection::vec(any::<u8>(), 0..16), s in 0usize..100) {
        let x = BigUint::from_bytes_be(&a);
        prop_assert_eq!(x.shl(s).shr(s), x);
    }

    // -- ciphers -----------------------------------------------------------

    #[test]
    fn chacha20_round_trips(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                            data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let k = Key(key);
        let ct = chacha20_encrypt(&k, &nonce, 1, &data);
        prop_assert_eq!(chacha20_encrypt(&k, &nonce, 1, &ct), data);
    }

    #[test]
    fn aead_round_trips_and_rejects_tamper(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                           aad in prop::collection::vec(any::<u8>(), 0..64),
                                           data in prop::collection::vec(any::<u8>(), 0..512),
                                           flip in any::<(usize, u8)>()) {
        let aead = Aead::new(&Key(key));
        let sealed = aead.seal(&nonce, &aad, &data);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), data);
        // Any single-byte change (with a non-zero xor) must fail.
        let (pos, mask) = flip;
        if mask != 0 && !sealed.is_empty() {
            let mut bad = sealed.clone();
            let i = pos % bad.len();
            bad[i] ^= mask;
            prop_assert!(aead.open(&nonce, &aad, &bad).is_err());
        }
    }

    // -- LUKS --------------------------------------------------------------

    #[test]
    fn luks_round_trips_any_sector(pass in prop::collection::vec(any::<u8>(), 1..32),
                                   sector in 0u64..50,
                                   data in prop::collection::vec(any::<u8>(), SECTOR_SIZE..=SECTOR_SIZE)) {
        let mut rng = XorShiftSource::new(7);
        let mut luks = LuksDevice::format(RamDisk::new(64), &pass, &mut rng).unwrap();
        luks.write_sector(sector, &data).unwrap();
        let mut buf = [0u8; SECTOR_SIZE];
        luks.read_sector(sector, &mut buf).unwrap();
        prop_assert_eq!(&buf[..], &data[..]);
        // Ciphertext at rest differs from plaintext (unless astronomically unlucky).
        let raw = luks.into_inner();
        let mut on_disk = [0u8; SECTOR_SIZE];
        raw.read_sector(sector + bolted::crypto::luks::HEADER_SECTORS, &mut on_disk).unwrap();
        prop_assert_ne!(&on_disk[..], &data[..]);
    }

    // -- key split -----------------------------------------------------------

    #[test]
    fn uv_split_always_recombines(key in any::<[u8; 32]>(), seed in any::<u64>()) {
        let mut rng = XorShiftSource::new(seed);
        let k = Key(key);
        let (u, v) = split_key(&k, &mut rng);
        prop_assert_eq!(combine_key(&u, &v).0, key);
        // Neither share equals the key (w.h.p. — the share is random).
        prop_assert!(u.0 != key || v.0 == [0u8; 32]);
    }

    #[test]
    fn payload_codec_round_trips(name in "[a-z0-9.-]{1,32}", size in any::<u64>(),
                                 cmdline in "[ -~]{0,64}",
                                 pass in prop::collection::vec(any::<u8>(), 0..64),
                                 psk in prop::collection::vec(any::<u8>(), 0..64),
                                 key in any::<[u8; 32]>()) {
        let p = TenantPayload {
            kernel_name: name,
            kernel_digest: sha256(b"k"),
            kernel_size: size,
            cmdline,
            luks_passphrase: pass,
            ipsec_psk: psk,
            script: "kexec".into(),
        };
        let k = Key(key);
        prop_assert_eq!(TenantPayload::open(&p.seal(&k), &k).unwrap(), p);
    }

    // -- TPM / IMA ------------------------------------------------------------

    #[test]
    fn pcr_extends_never_collide_with_reorder(
        ms in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..16), 2..6)
    ) {
        // Extending a permuted sequence yields a different PCR value
        // unless the permutation is the identity.
        let mut fwd = PcrBank::new();
        for m in &ms { fwd.extend(0, &sha256(m)); }
        let mut rev = PcrBank::new();
        for m in ms.iter().rev() { rev.extend(0, &sha256(m)); }
        let palindrome = ms.iter().eq(ms.iter().rev());
        if !palindrome {
            prop_assert_ne!(fwd.read(0), rev.read(0));
        }
    }

    #[test]
    fn ima_log_replay_always_matches_live_pcr(
        files in prop::collection::vec(("[a-z/]{1,20}", prop::collection::vec(any::<u8>(), 0..64)), 0..20)
    ) {
        let mut tpm = Tpm::new(5, 512);
        let mut log = ImaLog::new();
        for (path, content) in &files {
            log.measure(&mut tpm, path, content);
        }
        prop_assert_eq!(log.replay_pcr(), tpm.pcr_read(bolted::tpm::index::IMA));
    }

    // -- simulator ----------------------------------------------------------

    #[test]
    fn sim_resource_conserves_work(jobs in prop::collection::vec(1u64..200, 1..40),
                                   capacity in 1usize..8) {
        // Total busy time on a FIFO resource equals the sum of service
        // times when all jobs arrive at t=0 (work conservation): the
        // makespan is bounded by ceil-scheduling bounds.
        let sim = Sim::new();
        let res = Resource::new(&sim, capacity);
        let total: u64 = jobs.iter().sum();
        let max = *jobs.iter().max().unwrap();
        for ms in jobs.clone() {
            let r = res.clone();
            sim.spawn(async move { r.visit(SimDuration::from_millis(ms)).await });
        }
        prop_assert_eq!(sim.run(), 0);
        let makespan = sim.now().as_nanos() / 1_000_000;
        let lower = (total.div_ceil(capacity as u64)).max(max);
        prop_assert!(makespan >= lower, "makespan {} < lower bound {}", makespan, lower);
        prop_assert!(makespan <= total, "makespan {} > serial time {}", makespan, total);
    }

    #[test]
    fn sim_rng_reproducible(seed in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sim_rng_range_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(r.gen_range(bound) < bound);
        }
    }
}
