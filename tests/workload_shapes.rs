//! Runs the paper's workloads on *actually provisioned* enclaves —
//! integrating core provisioning with the workload models, rather than
//! the standalone fabrics the unit tests use.

use bolted::core::{Cloud, CloudConfig, Enclave, SecurityProfile, Tenant};
use bolted::crypto::CipherSuite;
use bolted::firmware::KernelImage;
use bolted::sim::Sim;
use bolted::workloads::{
    run_npb, run_terasort, CommGroup, NpbKernel, SecurityVariant, TeraSortConfig,
};

/// Provisions `n` nodes under `profile` and returns the enclave plus the
/// simulation it lives on.
fn provisioned_enclave(n: usize, profile: SecurityProfile) -> (Sim, Cloud, Enclave) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: n,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let enclave = sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let mut members = Vec::new();
            for node in cloud.nodes() {
                members.push(
                    tenant
                        .provision(node, &profile, golden)
                        .await
                        .expect("provisions"),
                );
            }
            Enclave::form(&cloud, members)
        }
    });
    (sim, cloud, enclave)
}

fn comm_group(sim: &Sim, cloud: &Cloud, enclave: &Enclave) -> CommGroup {
    let hosts = (0..enclave.len()).map(|i| enclave.host(i)).collect();
    let cipher = enclave.encrypted.then(|| CipherSuite::AesNi.default_cost());
    CommGroup::new(sim, &cloud.fabric, hosts, cipher)
}

#[test]
fn npb_on_a_real_bob_enclave_runs_plain() {
    let (sim, cloud, enclave) = provisioned_enclave(8, SecurityProfile::bob());
    assert!(!enclave.encrypted, "bob does not encrypt");
    let group = comm_group(&sim, &cloud, &enclave);
    let r = sim.block_on({
        let sim2 = sim.clone();
        async move { run_npb(&sim2, &group, NpbKernel::Ep).await }
    });
    assert!(!r.encrypted);
    assert!(r.duration.as_secs_f64() > 1.0);
}

#[test]
fn cg_on_real_enclaves_shows_the_figure_7_gap() {
    let (sim_p, cloud_p, enclave_p) = provisioned_enclave(8, SecurityProfile::bob());
    let group_p = comm_group(&sim_p, &cloud_p, &enclave_p);
    let plain = sim_p.block_on({
        let sim2 = sim_p.clone();
        async move { run_npb(&sim2, &group_p, NpbKernel::Cg).await }
    });
    let (sim_e, cloud_e, enclave_e) = provisioned_enclave(8, SecurityProfile::charlie());
    assert!(enclave_e.encrypted);
    let group_e = comm_group(&sim_e, &cloud_e, &enclave_e);
    let enc = sim_e.block_on({
        let sim2 = sim_e.clone();
        async move { run_npb(&sim2, &group_e, NpbKernel::Cg).await }
    });
    let factor = enc.duration.as_secs_f64() / plain.duration.as_secs_f64();
    assert!(
        factor > 2.0,
        "CG through a real Charlie enclave must blow up: {factor:.2}x"
    );
}

#[test]
fn terasort_on_a_real_charlie_enclave() {
    let (sim, cloud, enclave) = provisioned_enclave(16, SecurityProfile::charlie());
    let group = comm_group(&sim, &cloud, &enclave);
    let cfg = TeraSortConfig {
        dataset_bytes: 16 << 30,
        ..TeraSortConfig::default()
    };
    let r = sim.block_on({
        let sim2 = sim.clone();
        async move { run_terasort(&sim2, &group, SecurityVariant::LuksIpsec, cfg).await }
    });
    assert_eq!(r.nodes, 16);
    assert!(r.duration.as_secs_f64() > 10.0);
}

#[test]
fn workload_traffic_counts_against_the_enclave_hosts() {
    let (sim, cloud, enclave) = provisioned_enclave(4, SecurityProfile::bob());
    let group = comm_group(&sim, &cloud, &enclave);
    let before: u64 = (0..4)
        .map(|i| cloud.fabric.host_traffic(enclave.host(i)).0)
        .sum();
    sim.block_on({
        let sim2 = sim.clone();
        async move {
            run_npb(&sim2, &group, NpbKernel::Mg).await;
        }
    });
    let after: u64 = (0..4)
        .map(|i| cloud.fabric.host_traffic(enclave.host(i)).0)
        .sum();
    assert!(
        after > before + (100 << 20),
        "MG moved real bytes over the provisioned fabric"
    );
}
