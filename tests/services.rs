//! Service-boundary tests: the tenant orchestrator speaks only to the
//! four object-safe traits, so backends can be wrapped (fault shims) or
//! replaced wholesale (mocks) without touching orchestration code.

mod common;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bolted_sim::lock;

use bolted::bmi::{Bmi, BmiError};
use bolted::core::{
    linuxboot_source, AttestationService, BootService, BoxFuture, Calibration, Cloud,
    IsolationService, NodeState, ProvisionError, ProvisioningService, SecurityProfile, Services,
    Tenant, TenantEnv,
};

use bolted::crypto::prime::RandomSource;
use bolted::crypto::rsa::PublicKey;
use bolted::crypto::sha256::Digest;
use bolted::firmware::{FirmwareImage, FirmwareKind, KernelImage, Machine, MachineError};
use bolted::hil::{HilError, NetworkId, NodeId, NodeMetadata};
use bolted::keylime::{Agent, AttestOutcome, ImaWhitelist, KeyShare, RegisterError};
use bolted::keylime::{Registrar, Verifier, VerifierConfig};
use bolted::net::NetError;
use bolted::sim::{CallEnv, Resource, Sim, Tracer};
use bolted::storage::Gateway;
use bolted::storage::{Cluster, ImageId, ImageStore, IscsiTarget, Transport};
use common::world;

// ---------------------------------------------------------------------------
// A wrapper backend: real cloud underneath, but the enclave/airlock
// attach always fails as if the switch management plane were down.
// ---------------------------------------------------------------------------

struct FlakyIsolation(Cloud);

impl IsolationService for FlakyIsolation {
    fn node_name(&self, node: NodeId) -> Result<String, HilError> {
        self.0.hil.node_name(node)
    }
    fn node_metadata(&self, node: NodeId) -> Result<NodeMetadata, HilError> {
        self.0.hil.node_metadata(node)
    }
    fn create_network(&self, project: &str, name: String) -> Result<NetworkId, HilError> {
        self.0.hil.create_network(project, name)
    }
    fn allocate_node(&self, project: &str, node: NodeId) -> Result<(), HilError> {
        self.0.hil.allocate_node(project, node)
    }
    fn free_node(&self, project: &str, node: NodeId) -> Result<(), HilError> {
        self.0.hil.free_node(project, node)
    }
    fn free_nodes(&self) -> Vec<NodeId> {
        self.0.hil.free_nodes()
    }
    fn connect_node(&self, _project: &str, _node: NodeId, _net: NetworkId) -> Result<(), HilError> {
        Err(HilError::Switch(NetError::SwitchUnreachable))
    }
    fn detach_node(&self, project: &str, node: NodeId) -> Result<(), HilError> {
        self.0.hil.detach_node(project, node)
    }
    fn power_cycle(&self, project: &str, node: NodeId) -> Result<(), HilError> {
        self.0.hil.power_cycle(project, node)
    }
    fn power_off(&self, project: &str, node: NodeId) -> Result<(), HilError> {
        self.0.hil.power_off(project, node)
    }
    fn quarantine(&self, node: NodeId) {
        self.0.quarantine(node);
    }
}

/// Airlock attach exhausts its retries through the trait object, and
/// the node comes back to the free pool (Airlock → Free abandon edge),
/// never to quarantine: infrastructure faults are not evidence of
/// compromise.
#[test]
fn exhausted_attach_through_trait_object_abandons_to_free_pool() {
    let (sim, cloud, golden) = world().build();
    let env = TenantEnv::of_cloud(&cloud);
    let attestation = Arc::new(bolted::core::KeylimeAttestation::new(
        &cloud,
        VerifierConfig::default(),
    ));
    let verifier = attestation.verifier().clone();
    let backend: Arc<Cloud> = Arc::new(cloud.clone());
    let services = Services {
        isolation: Arc::new(FlakyIsolation(cloud.clone())),
        attestation,
        provisioning: backend.clone(),
        boot: backend,
    };
    let tenant =
        Tenant::with_backend("charlie", env, services, verifier).expect("tenant over mock");
    let node = cloud.nodes()[0];
    let result = sim.block_on({
        let tenant = tenant.clone();
        async move {
            tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
        }
    });
    match result {
        Err(ProvisionError::Exhausted { op, attempts, .. }) => {
            assert_eq!(op, "hil.connect_node");
            assert!(attempts >= 2, "retried before giving up: {attempts}");
        }
        other => panic!("expected Exhausted, got {other:?}", other = other.err()),
    }
    assert!(
        cloud.hil.free_nodes().contains(&node),
        "abandoned node returns to the free pool"
    );
    assert!(
        cloud.rejected_pool().is_empty(),
        "infrastructure faults must not quarantine"
    );
}

// ---------------------------------------------------------------------------
// A full mock backend: no Cloud at all. One shared machine, no-op
// isolation, always-trusted attestation, and a standalone BMI for the
// boot path.
// ---------------------------------------------------------------------------

struct NullIsolation {
    machine: Machine,
    ek: PublicKey,
    networks: Mutex<usize>,
}

impl IsolationService for NullIsolation {
    fn node_name(&self, _node: NodeId) -> Result<String, HilError> {
        Ok(self.machine.name())
    }
    fn node_metadata(&self, _node: NodeId) -> Result<NodeMetadata, HilError> {
        Ok(NodeMetadata {
            ek_pub: Some(self.ek.clone()),
            platform_whitelist: Vec::new(),
            extra: HashMap::new(),
        })
    }
    fn create_network(&self, _project: &str, _name: String) -> Result<NetworkId, HilError> {
        let mut n = lock(&self.networks);
        *n += 1;
        Ok(NetworkId(*n - 1))
    }
    fn allocate_node(&self, _project: &str, _node: NodeId) -> Result<(), HilError> {
        Ok(())
    }
    fn free_nodes(&self) -> Vec<NodeId> {
        Vec::new()
    }
    fn free_node(&self, _project: &str, _node: NodeId) -> Result<(), HilError> {
        Ok(())
    }
    fn connect_node(&self, _project: &str, _node: NodeId, _net: NetworkId) -> Result<(), HilError> {
        Ok(())
    }
    fn detach_node(&self, _project: &str, _node: NodeId) -> Result<(), HilError> {
        Ok(())
    }
    fn power_cycle(&self, _project: &str, _node: NodeId) -> Result<(), HilError> {
        self.machine.power_cycle();
        Ok(())
    }
    fn power_off(&self, _project: &str, _node: NodeId) -> Result<(), HilError> {
        self.machine.power_off();
        Ok(())
    }
    fn quarantine(&self, _node: NodeId) {}
}

struct NullBoot {
    sim: Sim,
    machine: Machine,
}

impl BootService for NullBoot {
    fn machine(&self, _node: NodeId) -> Machine {
        self.machine.clone()
    }
    fn good_firmware(&self, _kind: FirmwareKind) -> FirmwareImage {
        self.machine.flash()
    }
    fn run_firmware<'a>(
        &'a self,
        machine: &'a Machine,
    ) -> BoxFuture<'a, Result<FirmwareKind, MachineError>> {
        Box::pin(machine.run_firmware(&self.sim))
    }
    fn measure_download(
        &self,
        machine: &Machine,
        name: &str,
        digest: Digest,
    ) -> Result<(), MachineError> {
        machine.measure_download(name, digest)
    }
    fn kexec(
        &self,
        machine: &Machine,
        kernel: KernelImage,
        tenant: &str,
    ) -> Result<(), MachineError> {
        machine.kexec(kernel, tenant)
    }
    fn scrub(&self, machine: &Machine) {
        machine.scrub_memory();
    }
}

struct NullAttestation {
    ek: PublicKey,
}

impl AttestationService for NullAttestation {
    fn register<'a>(
        &'a self,
        _agent: &'a Agent,
        _rng: &'a mut dyn RandomSource,
    ) -> BoxFuture<'a, Result<(), RegisterError>> {
        Box::pin(async { Ok(()) })
    }
    fn registered_ek(&self, _agent_id: &str) -> Option<PublicKey> {
        Some(self.ek.clone())
    }
    fn enroll(
        &self,
        _agent: &Agent,
        _boot_whitelist: std::collections::HashSet<Digest>,
        _ima_whitelist: ImaWhitelist,
        _v_share: Option<KeyShare>,
        _sealed_payload: Vec<u8>,
        _payload_wire_bytes: u64,
    ) {
    }
    fn attest_once<'a>(
        &'a self,
        _node_id: &'a str,
        _continuous: bool,
    ) -> BoxFuture<'a, AttestOutcome> {
        Box::pin(async { AttestOutcome::Trusted })
    }
    fn stop(&self, _node_id: &str) {}
}

struct StandaloneBmi(Bmi);

impl ProvisioningService for StandaloneBmi {
    fn clone_for_server(&self, golden: ImageId, server_name: &str) -> Result<ImageId, BmiError> {
        self.0.clone_for_server(golden, server_name)
    }
    fn extract_boot_info(&self, image: ImageId) -> Result<(KernelImage, String), BmiError> {
        self.0.extract_boot_info(image)
    }
    fn boot_target(&self, image: ImageId, transport: Transport, read_ahead: u64) -> IscsiTarget {
        self.0.boot_target(image, transport, read_ahead)
    }
    fn release(&self, image: ImageId, keep: bool) -> Result<(), BmiError> {
        self.0.release(image, keep)
    }
}

/// A no-op mock backend provisions Charlie end to end: the entire
/// orchestration (allocate → power-cycle → firmware → clone →
/// registration → quote → enclave-join → kexec → boot I/O) runs with no
/// Cloud behind the traits at all.
#[test]
fn mock_backend_provisions_end_to_end_through_trait_objects() {
    let sim = Sim::new();
    let machine = Machine::new("mock-01", linuxboot_source().build(), 7000, 512, 64);
    let ek = machine.with_tpm(|t| t.ek_pub().clone());
    let cluster = Cluster::paper_default(&sim);
    let store = ImageStore::new(&cluster);
    let gateway = Gateway::new(&sim);
    let bmi = Bmi::new(&sim, &store, &gateway);
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "root=/dev/sda")
        .expect("golden");
    let env = TenantEnv {
        calib: Calibration::default(),
        call: CallEnv::new(&sim),
        tracer: Tracer::new(),
        http: Resource::new(&sim, 1),
        airlock: Resource::new(&sim, 1),
    };
    let services = Services {
        isolation: Arc::new(NullIsolation {
            machine: machine.clone(),
            ek: ek.clone(),
            networks: Mutex::new(0),
        }),
        attestation: Arc::new(NullAttestation { ek }),
        provisioning: Arc::new(StandaloneBmi(bmi)),
        boot: Arc::new(NullBoot {
            sim: sim.clone(),
            machine: machine.clone(),
        }),
    };
    // The verifier is unused by the mock path; a fresh one satisfies
    // the continuous-attestation surface of the Tenant API.
    let verifier = Verifier::new(&sim, &Registrar::new(), VerifierConfig::default());
    let tenant = Tenant::with_backend("charlie", env, services, verifier).expect("tenant");
    let p = sim
        .block_on(async move {
            tenant
                .provision(NodeId(0), &SecurityProfile::charlie(), golden)
                .await
        })
        .expect("mock backend provisions");
    assert!(p.agent.is_some(), "attested profile produced an agent");
    assert_eq!(p.lifecycle.state(), NodeState::Allocated);
    assert!(p.report.phase("kernel-boot").is_some());
    assert!(
        machine.booted_kernel().is_some(),
        "kexec actually ran on the mock machine"
    );
    assert!(!p.psk.is_empty(), "charlie gets an enclave PSK");
}
