//! §2/§6 threat-model integration tests: every attack the paper defends
//! against, executed against the full stack.

use bolted::core::{
    revocation_experiment, Cloud, CloudConfig, Enclave, ProvisionError, SecurityProfile, Tenant,
};
use bolted::firmware::{FirmwareKind, KernelImage};
use bolted::keylime::ImaWhitelist;
use bolted::sim::{Sim, SimDuration};
use bolted::storage::ImageId;

fn build(nodes: usize) -> (Sim, Cloud, ImageId) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes,
            firmware: FirmwareKind::LinuxBoot,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    (sim, cloud, golden)
}

fn is_rejected(r: Result<bolted::core::ProvisionedNode, ProvisionError>) -> bool {
    matches!(r, Err(ProvisionError::Rejected(_)))
}

// -- prior to occupancy ------------------------------------------------------

#[test]
fn prior_occupancy_firmware_implant_rejected() {
    let (sim, cloud, golden) = build(1);
    let node = cloud.nodes()[0];
    let m = cloud.machine(node);
    m.reflash(m.flash().tampered(b"previous tenant's bootkit"));
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let r = sim.block_on(async move {
        tenant
            .provision(node, &SecurityProfile::charlie(), golden)
            .await
    });
    assert!(is_rejected(r));
    assert_eq!(cloud.rejected_pool(), vec![node]);
}

#[test]
fn prior_occupancy_downgraded_firmware_version_rejected() {
    // Even a *genuine but outdated* firmware build fails attestation:
    // the whitelist pins the tenant's expected build, giving "time-of-use
    // proof that the provider has kept the firmware up to date" (§3).
    let (sim, cloud, golden) = build(1);
    let node = cloud.nodes()[0];
    let old = bolted::firmware::FirmwareSource::from_tree(
        FirmwareKind::LinuxBoot,
        "heads-0.1.0-with-known-cve",
        b"older source tree",
    )
    .build();
    cloud.machine(node).reflash(old);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let r = sim.block_on(async move {
        tenant
            .provision(node, &SecurityProfile::charlie(), golden)
            .await
    });
    assert!(is_rejected(r));
}

#[test]
fn rejected_node_returns_to_service_after_remediation() {
    let (sim, cloud, golden) = build(1);
    let node = cloud.nodes()[0];
    let m = cloud.machine(node);
    let good_flash = m.flash();
    m.reflash(good_flash.tampered(b"implant"));
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let r = sim.block_on({
        let tenant = tenant.clone();
        async move {
            tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
        }
    });
    assert!(is_rejected(r));
    // Provider remediates: reflash with the canonical build.
    m.reflash(good_flash);
    let r2 = sim.block_on({
        let tenant = tenant.clone();
        async move {
            tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
        }
    });
    assert!(r2.is_ok(), "remediated node attests clean: {:?}", r2.err());
}

#[test]
fn server_spoofing_detected_via_ek_binding() {
    // HIL publishes each node's EK; the tenant cross-checks the EK the
    // agent registered with. A different physical machine answering for
    // the reserved one has a different EK.
    let (sim, cloud, golden) = build(2);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let nodes = cloud.nodes();
    sim.block_on({
        let tenant = tenant.clone();
        let nodes = nodes.clone();
        async move {
            tenant
                .provision(nodes[0], &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
        }
    });
    // The agent on m620-01 registered with m620-01's EK:
    assert!(tenant.verify_node_identity(nodes[0], "m620-01"));
    // ...but its identity does NOT validate against node 2's published EK.
    assert!(!tenant.verify_node_identity(nodes[1], "m620-01"));
}

// -- during occupancy --------------------------------------------------------

#[test]
fn during_occupancy_cross_tenant_frames_dropped() {
    let (sim, cloud, golden) = build(2);
    let t1 = Tenant::new(&cloud, "charlie").expect("tenant");
    let t2 = Tenant::new(&cloud, "mallory").expect("tenant");
    let nodes = cloud.nodes();
    sim.block_on({
        let (t1, t2) = (t1.clone(), t2.clone());
        let nodes = nodes.clone();
        async move {
            t1.provision(nodes[0], &SecurityProfile::charlie(), golden)
                .await
                .expect("t1");
            t2.provision(nodes[1], &SecurityProfile::alice(), golden)
                .await
                .expect("t2");
        }
    });
    let h0 = cloud.hil.node_host(nodes[0]).expect("host");
    let h1 = cloud.hil.node_host(nodes[1]).expect("host");
    let before = cloud.fabric.isolation_violations();
    let r = sim.block_on({
        let fabric = cloud.fabric.clone();
        async move {
            fabric
                .transfer(h1, h0, 4096, bolted::net::TransferSpec::plain())
                .await
        }
    });
    assert!(r.is_err(), "mallory cannot reach charlie's enclave");
    assert_eq!(cloud.fabric.isolation_violations(), before + 1);
}

#[test]
fn during_occupancy_eavesdropper_sees_only_ciphertext() {
    let (sim, cloud, golden) = build(2);
    cloud.fabric.enable_taps();
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let nodes = cloud.nodes();
    let enclave = sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let mut members = Vec::new();
            for n in nodes {
                members.push(
                    tenant
                        .provision(n, &SecurityProfile::charlie(), golden)
                        .await
                        .expect("provisions"),
                );
            }
            Enclave::form(&cloud, members)
        }
    });
    // Application data crosses the mesh sealed; the provider's tap on the
    // enclave VLAN captures no plaintext.
    let secret = b"patient records batch 7";
    let opened = enclave.tunnel_send(0, 1, secret).expect("delivers");
    assert_eq!(opened, secret);
    let vlan = cloud
        .fabric
        .host_vlan(enclave.host(0))
        .expect("enclave vlan");
    for frame in cloud.fabric.tapped(vlan) {
        assert!(
            !frame.windows(7).any(|w| w == b"patient"),
            "plaintext leaked to the wire"
        );
    }
}

#[test]
fn during_occupancy_runtime_compromise_detected_and_banned() {
    let (sim, cloud, golden) = build(3);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let mut wl = ImaWhitelist::new();
    wl.allow_content("/usr/bin/approved", b"fine");
    tenant.set_ima_whitelist(wl);
    let (report, banned, innocent_ok) = sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let mut members = Vec::new();
            for n in cloud.nodes() {
                members.push(
                    tenant
                        .provision(n, &SecurityProfile::charlie(), golden)
                        .await
                        .expect("provisions"),
                );
            }
            let enclave = Enclave::form(&cloud, members);
            let report =
                revocation_experiment(&cloud, &tenant, &enclave, 1, SimDuration::from_secs(25))
                    .await;
            (
                report,
                enclave.tunnel_send(0, 1, b"x").is_err(),
                enclave.tunnel_send(0, 2, b"y").is_ok(),
            )
        }
    });
    assert!(report.detection_latency().as_secs_f64() < 4.0);
    assert!(report.total_latency().as_secs_f64() < 6.5, "paper: ≈3 s");
    assert!(banned, "victim cryptographically banned");
    assert!(innocent_ok, "bystanders unaffected");
}

// -- after occupancy ---------------------------------------------------------

#[test]
fn after_occupancy_ram_scrubbed_before_next_tenant() {
    let (sim, cloud, golden) = build(1);
    let node = cloud.nodes()[0];
    let charlie = Tenant::new(&cloud, "charlie").expect("tenant");
    let machine = cloud.machine(node);
    sim.block_on({
        let charlie = charlie.clone();
        let machine = machine.clone();
        async move {
            let p = charlie
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
            machine.write_secret_to_ram("charlie", b"luks master key");
            charlie.release(p, false).await.expect("releases");
        }
    });
    // Residue persists through power-off (cold boot threat)...
    assert!(machine.ram_residue().is_some());
    // ...until the next occupant's LinuxBoot runs and scrubs.
    let eve = Tenant::new(&cloud, "eve").expect("tenant");
    sim.block_on({
        let eve = eve.clone();
        async move {
            // Power-cycle + firmware run happen inside provision; check
            // the residue right after POST by provisioning fully.
            eve.provision(node, &SecurityProfile::alice(), golden)
                .await
                .expect("provisions");
        }
    });
    if let Some(r) = machine.ram_residue() {
        assert_ne!(r.tenant, "charlie", "charlie's data must be gone");
    }
}

#[test]
fn after_occupancy_released_volume_deleted_from_storage() {
    let (sim, cloud, golden) = build(1);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let node = cloud.nodes()[0];
    sim.block_on({
        let tenant = tenant.clone();
        async move {
            let p = tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
                .expect("provisions");
            tenant.release(p, false).await.expect("releases");
        }
    });
    assert!(
        cloud.store.lookup("m620-01-root").is_none(),
        "no persistent state survives release"
    );
}

#[test]
fn quote_replay_across_nodes_fails() {
    // A compromised node cannot present a clean sibling's quote: the AIK
    // is bound to each TPM via credential activation.
    let (sim, cloud, golden) = build(2);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let nodes = cloud.nodes();
    let (clean_evidence, verifier) = sim.block_on({
        let tenant = tenant.clone();
        async move {
            let p0 = tenant
                .provision(nodes[0], &SecurityProfile::charlie(), golden)
                .await
                .expect("clean node");
            let agent = p0.agent.clone().expect("agent");
            let sel = tenant.verifier.config().boot_selection.clone();
            let ev = agent
                .attest(&tenant.sim(), [9; 32], &sel)
                .await
                .expect("attests");
            (ev, tenant.verifier.clone())
        }
    });
    // Presented for the wrong node id ("m620-02"), verification fails —
    // the registrar has no certified AIK matching it.
    let sel = verifier.config().boot_selection.clone();
    let err = verifier
        .verify_evidence("m620-02", &[9; 32], &sel, &clean_evidence)
        .unwrap_err();
    assert!(
        err.contains("not certified") || err.contains("unknown"),
        "{err}"
    );
}

// -- key-release ordering (span-driven) --------------------------------------

#[test]
fn v_share_only_leaves_the_verifier_after_quote_verification_closes() {
    // The bootstrap key's V share is what actually unlocks the tenant
    // payload (LUKS passphrase, IPsec PSK). The span layer totally
    // orders every boundary it records, so the threat-model claim
    // "no key material moves before the quote verdict" is checkable
    // structurally: the `v-release` event's sequence number must be
    // strictly greater than the close of the `quote-verify` span.
    let (sim, cloud, golden) = build(1);
    let node = cloud.nodes()[0];
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    sim.block_on({
        let tenant = tenant.clone();
        async move {
            tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
        }
    })
    .expect("provisions");

    let qv = cloud
        .spans
        .find("quote-verify", "m620-01")
        .expect("quote-verify span");
    assert_eq!(qv.attr("outcome"), Some("trusted"));
    let qv_closed = qv.end_seq.expect("verdict landed");
    let v = cloud
        .spans
        .find("v-release", "m620-01")
        .expect("v-release event");
    assert!(
        v.seq > qv_closed,
        "V share released (seq {}) before quote verification closed (seq {qv_closed})",
        v.seq
    );
    // The U share alone reveals nothing (one-time-pad split), so it is
    // allowed — and needed — *before* attestation: it ships with the
    // sealed payload the agent holds while waiting for the verdict.
    let u = cloud
        .spans
        .find("u-share", "m620-01")
        .expect("u-share event");
    assert!(u.seq < qv.seq, "U ships before the quote round starts");
}

#[test]
fn rejected_node_never_sees_a_v_release_event() {
    let (sim, cloud, golden) = build(1);
    let node = cloud.nodes()[0];
    let m = cloud.machine(node);
    m.reflash(m.flash().tampered(b"bootkit"));
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let r = sim.block_on({
        let tenant = tenant.clone();
        async move {
            tenant
                .provision(node, &SecurityProfile::charlie(), golden)
                .await
        }
    });
    assert!(is_rejected(r));
    let qv = cloud
        .spans
        .find("quote-verify", "m620-01")
        .expect("quote-verify span");
    assert_eq!(qv.attr("outcome"), Some("failed"));
    assert!(
        cloud.spans.find("v-release", "m620-01").is_none(),
        "no key material may move to a rejected node"
    );
    let root = cloud.spans.find("provision", "m620-01").expect("root");
    assert_eq!(root.attr("outcome"), Some("rejected"));
}
