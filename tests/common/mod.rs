//! Shared world-building boilerplate for the integration test tree.
//!
//! Every integration test stands up the same skeleton — a fresh [`Sim`],
//! a [`Cloud`] over it, and a golden image in the BMI — before it gets
//! to the behaviour it actually tests. [`world()`] builds that skeleton
//! from a tiny builder, so a test states only what it varies (node
//! count, fault plan, firmware) and inherits everything else.

// Each test binary compiles its own copy of this module and uses a
// subset of it.
#![allow(dead_code)]

use bolted::core::{Cloud, CloudConfig, FleetReport, SecurityProfile, Tenant};
use bolted::firmware::{FirmwareKind, KernelImage};
use bolted::sim::fault::FaultPlan;
use bolted::sim::Sim;
use bolted::storage::ImageId;

/// The canonical kernel every integration world boots.
pub fn paper_kernel() -> KernelImage {
    KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz+initrd")
}

/// Accumulates the knobs a test world can vary; finish with
/// [`WorldBuilder::build`].
pub struct WorldBuilder {
    nodes: usize,
    faults: FaultPlan,
    firmware: Option<FirmwareKind>,
}

/// Starts a world builder: one node, no faults, default firmware.
pub fn world() -> WorldBuilder {
    WorldBuilder {
        nodes: 1,
        faults: FaultPlan::none(),
        firmware: None,
    }
}

impl WorldBuilder {
    /// Number of nodes in the free pool.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Installs a fault plan for the whole world.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Boots every node with this firmware instead of the default.
    pub fn firmware(mut self, firmware: FirmwareKind) -> Self {
        self.firmware = Some(firmware);
        self
    }

    /// Builds the executor, the cloud, and the golden image.
    pub fn build(self) -> (Sim, Cloud, ImageId) {
        let sim = Sim::new();
        let mut config = CloudConfig {
            nodes: self.nodes,
            faults: self.faults,
            ..CloudConfig::default()
        };
        if let Some(firmware) = self.firmware {
            config.firmware = firmware;
        }
        let cloud = Cloud::build(&sim, config);
        let golden = cloud
            .bmi
            .create_golden("fedora28", 8 << 30, 7, &paper_kernel(), "")
            .expect("golden");
        (sim, cloud, golden)
    }
}

/// Provisions the first `n` nodes as one `charlie` fleet call under the
/// full attested profile and returns the per-node report.
pub fn provision_fleet(sim: &Sim, cloud: &Cloud, golden: ImageId, n: usize) -> FleetReport {
    let tenant = Tenant::new(cloud, "charlie").expect("tenant");
    let nodes: Vec<_> = cloud.nodes().into_iter().take(n).collect();
    sim.block_on({
        let tenant = tenant.clone();
        async move {
            tenant
                .provision_fleet_report(&nodes, &SecurityProfile::charlie(), golden)
                .await
        }
    })
}
