//! Cross-crate integration tests: full provisioning flows through the
//! entire stack (sim → crypto → tpm → net → storage → hil → firmware →
//! bmi → keylime → core).

use bolted::core::{
    foreman_provision, foreman_release_with_scrub, Cloud, CloudConfig, NodeState, SecurityProfile,
    Tenant,
};
use bolted::firmware::{FirmwareKind, KernelImage};
use bolted::sim::{join_all, Sim};
use bolted::storage::ImageId;

fn build(nodes: usize, firmware: FirmwareKind) -> (Sim, Cloud, ImageId) {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes,
            firmware,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28-4.17.9", b"vmlinuz+initrd");
    let golden = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    (sim, cloud, golden)
}

#[test]
fn paper_headline_under_three_minutes_unattested() {
    let (sim, cloud, golden) = build(1, FirmwareKind::LinuxBoot);
    let tenant = Tenant::new(&cloud, "alice").expect("tenant");
    let node = cloud.nodes()[0];
    let p = sim
        .block_on(async move {
            tenant
                .provision(node, &SecurityProfile::alice(), golden)
                .await
        })
        .expect("provisions");
    assert!(
        p.report.total().as_secs_f64() < 180.0,
        "paper: ~3 minutes to allocate and provision; got {}",
        p.report.total()
    );
}

#[test]
fn paper_headline_attestation_costs_about_a_quarter() {
    let (sim, cloud, golden) = build(2, FirmwareKind::LinuxBoot);
    let alice = Tenant::new(&cloud, "alice").expect("tenant");
    let bob = Tenant::new(&cloud, "bob").expect("tenant");
    let nodes = cloud.nodes();
    let (a, b) = sim.block_on(async move {
        let a = alice
            .provision(nodes[0], &SecurityProfile::alice(), golden)
            .await
            .expect("alice");
        let b = bob
            .provision(nodes[1], &SecurityProfile::bob(), golden)
            .await
            .expect("bob");
        (
            a.report.total().as_secs_f64(),
            b.report.total().as_secs_f64(),
        )
    });
    let overhead = b / a - 1.0;
    assert!(
        (0.10..0.40).contains(&overhead),
        "paper: attestation ≈ +25%; got +{:.0}% ({a:.0}s vs {b:.0}s)",
        overhead * 100.0
    );
}

#[test]
fn full_cluster_provisioning_and_release_cycle() {
    let (sim, cloud, golden) = build(8, FirmwareKind::LinuxBoot);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let handles: Vec<_> = cloud
                .nodes()
                .into_iter()
                .map(|node| {
                    let tenant = tenant.clone();
                    cloud.sim.spawn(async move {
                        tenant
                            .provision(node, &SecurityProfile::charlie(), golden)
                            .await
                            .expect("provisions")
                    })
                })
                .collect();
            let provisioned = join_all(handles).await;
            assert_eq!(provisioned.len(), 8);
            for p in &provisioned {
                assert_eq!(p.lifecycle.state(), NodeState::Allocated);
                assert!(p.agent.is_some());
            }
            // Release everything.
            for p in provisioned {
                tenant.release(p, false).await.expect("releases");
            }
        }
    });
    assert_eq!(cloud.hil.free_nodes().len(), 8, "all nodes returned");
    // Released volumes are gone from the image store.
    for i in 1..=8 {
        assert!(cloud.store.lookup(&format!("m620-{i:02}-root")).is_none());
    }
}

#[test]
fn restart_volume_on_a_different_node() {
    // The elasticity property Foreman can't give: shut down, keep the
    // volume, restart the image on any compatible node.
    let (sim, cloud, golden) = build(2, FirmwareKind::LinuxBoot);
    let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
    let nodes = cloud.nodes();
    sim.block_on({
        let (tenant, cloud) = (tenant.clone(), cloud.clone());
        async move {
            let p = tenant
                .provision(nodes[0], &SecurityProfile::bob(), golden)
                .await
                .expect("provisions");
            let volume = p.image;
            tenant.release(p, true).await.expect("keeps the volume");
            // The volume persisted and can back another node's target.
            assert!(cloud.store.lookup("m620-01-root").is_some());
            let target = cloud.bmi.boot_target(
                volume,
                bolted::storage::Transport::plain_10g(),
                bolted::storage::TUNED_READ_AHEAD,
            );
            target.read_timed(0, 1 << 20).await.expect("readable");
        }
    });
}

#[test]
fn foreman_baseline_slower_and_stateful() {
    let (sim, cloud, golden) = build(2, FirmwareKind::Uefi);
    let tenant = Tenant::new(&cloud, "t").expect("tenant");
    let nodes = cloud.nodes();
    let (bolted_total, foreman_total, scrub) = sim.block_on({
        let cloud = cloud.clone();
        async move {
            let p = tenant
                .provision(nodes[0], &SecurityProfile::charlie().on_uefi(), golden)
                .await
                .expect("bolted");
            let f = foreman_provision(&cloud, "lab", nodes[1])
                .await
                .expect("foreman");
            let scrub = foreman_release_with_scrub(&cloud, "lab", nodes[1])
                .await
                .expect("scrubbed");
            (p.report.total(), f.total(), scrub)
        }
    });
    assert!(
        foreman_total.as_secs_f64() > 1.5 * bolted_total.as_secs_f64(),
        "paper: Bolted full-security still 1.6x faster than Foreman: {bolted_total} vs {foreman_total}"
    );
    assert!(
        scrub.as_secs_f64() > 3600.0,
        "stateful release needs hours of scrubbing: {scrub}"
    );
}

#[test]
fn uefi_and_linuxboot_full_stack_totals_match_figure_4() {
    for (fw, profile, lo, hi) in [
        (
            FirmwareKind::LinuxBoot,
            SecurityProfile::alice(),
            60.0,
            180.0,
        ),
        (FirmwareKind::LinuxBoot, SecurityProfile::bob(), 90.0, 240.0),
        (
            FirmwareKind::Uefi,
            SecurityProfile::charlie().on_uefi(),
            300.0,
            480.0,
        ),
    ] {
        let (sim, cloud, golden) = build(1, fw);
        let tenant = Tenant::new(&cloud, "t").expect("tenant");
        let node = cloud.nodes()[0];
        let name = profile.name.clone();
        let p = sim
            .block_on(async move { tenant.provision(node, &profile, golden).await })
            .expect("provisions");
        let t = p.report.total().as_secs_f64();
        assert!(
            (lo..hi).contains(&t),
            "{name}: expected {lo}-{hi}s, got {t}"
        );
    }
}

#[test]
fn provisioning_is_deterministic() {
    fn one_run() -> Vec<(String, u64)> {
        let (sim, cloud, golden) = build(4, FirmwareKind::LinuxBoot);
        let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
        sim.block_on({
            let cloud = cloud.clone();
            async move {
                let handles: Vec<_> = cloud
                    .nodes()
                    .into_iter()
                    .map(|node| {
                        let tenant = tenant.clone();
                        cloud.sim.spawn(async move {
                            let p = tenant
                                .provision(node, &SecurityProfile::charlie(), golden)
                                .await
                                .expect("provisions");
                            (p.report.node.clone(), p.report.total().as_nanos())
                        })
                    })
                    .collect();
                join_all(handles).await
            }
        })
    }
    assert_eq!(one_run(), one_run(), "bit-identical timings across runs");
}
