//! Profile-sensitivity integration tests: the tenant-visible knobs
//! (read-ahead, cipher suite, firmware kind) must shift end-to-end
//! behaviour in the directions the paper reports.

use bolted::core::{Cloud, CloudConfig, SecurityProfile, Tenant};
use bolted::crypto::CipherSuite;
use bolted::firmware::{FirmwareKind, KernelImage};
use bolted::sim::Sim;
use bolted::storage::ImageId;

fn provision_total(profile: SecurityProfile, firmware: FirmwareKind) -> f64 {
    let sim = Sim::new();
    let cloud = Cloud::build(
        &sim,
        CloudConfig {
            nodes: 1,
            firmware,
            ..CloudConfig::default()
        },
    );
    let kernel = KernelImage::from_bytes("fedora28", b"vmlinuz");
    let golden: ImageId = cloud
        .bmi
        .create_golden("fedora28", 8 << 30, 7, &kernel, "")
        .expect("golden");
    let tenant = Tenant::new(&cloud, "t").expect("tenant");
    let node = cloud.nodes()[0];
    sim.block_on(async move { tenant.provision(node, &profile, golden).await })
        .expect("provisions")
        .report
        .total()
        .as_secs_f64()
}

#[test]
fn untuned_read_ahead_slows_kernel_boot() {
    let tuned = provision_total(SecurityProfile::alice(), FirmwareKind::LinuxBoot);
    let untuned = provision_total(
        SecurityProfile::alice().untuned_read_ahead(),
        FirmwareKind::LinuxBoot,
    );
    assert!(
        untuned > tuned + 5.0,
        "128 KiB read-ahead must visibly slow the boot I/O: {tuned:.1}s vs {untuned:.1}s"
    );
}

#[test]
fn software_aes_charlie_pays_more_than_hardware_aes() {
    let mut hw = SecurityProfile::charlie();
    hw.cipher = CipherSuite::AesNi;
    let mut sw = SecurityProfile::charlie();
    sw.cipher = CipherSuite::AesSw;
    sw.name = "charlie-sw-aes".into();
    let t_hw = provision_total(hw, FirmwareKind::LinuxBoot);
    let t_sw = provision_total(sw, FirmwareKind::LinuxBoot);
    assert!(
        t_sw > t_hw,
        "software AES must cost more boot time: hw {t_hw:.1}s vs sw {t_sw:.1}s"
    );
}

#[test]
fn profile_cost_ordering_holds_end_to_end() {
    // Alice < Bob < Charlie on identical hardware: you pay for exactly
    // the security you pick (the paper's central claim).
    let a = provision_total(SecurityProfile::alice(), FirmwareKind::LinuxBoot);
    let b = provision_total(SecurityProfile::bob(), FirmwareKind::LinuxBoot);
    let c = provision_total(SecurityProfile::charlie(), FirmwareKind::LinuxBoot);
    assert!(a < b, "alice {a:.1}s < bob {b:.1}s");
    assert!(b < c, "bob {b:.1}s < charlie {c:.1}s");
}

#[test]
fn linuxboot_beats_uefi_for_every_profile() {
    for profile in [
        SecurityProfile::alice(),
        SecurityProfile::bob(),
        SecurityProfile::charlie(),
    ] {
        let lb = provision_total(profile.clone(), FirmwareKind::LinuxBoot);
        let uefi = provision_total(profile.clone().on_uefi(), FirmwareKind::Uefi);
        assert!(
            uefi > lb + 150.0,
            "{}: POST gap must dominate ({lb:.1}s vs {uefi:.1}s)",
            profile.name
        );
    }
}

#[test]
fn continuous_attestation_runs_only_for_charlie() {
    assert!(SecurityProfile::charlie().continuous_attestation);
    assert!(!SecurityProfile::bob().continuous_attestation);
    assert!(!SecurityProfile::alice().continuous_attestation);
}
