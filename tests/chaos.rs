//! Chaos tests: seeded fault injection across the provisioning pipeline.
//!
//! Three properties, per the fault model in DESIGN.md:
//! 1. Transient BMC / switch / registrar / verifier / storage faults are
//!    retried and provisioning still succeeds.
//! 2. A permanently-faulted node degrades gracefully: it is released
//!    back to the free pool and reported, without poisoning the rest of
//!    the fleet call.
//! 3. Everything is deterministic under a seed, and an empty fault plan
//!    is entirely free — timings match a run with no plan at all.

mod common;

use bolted::core::{ProvisionError, SecurityProfile, Tenant};
use bolted::sim::fault::{ops, FaultPlan, FaultSpec};

use common::{provision_fleet, world};

/// A plan that flaps every hardware-facing layer a bounded number of
/// times (all recover within the default 4-attempt retry policy) and
/// sprinkles low-probability transient storage faults on top.
fn flaky_everything(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_target(ops::BMC_POWER, "m620-01", FaultSpec::flaky(2))
        .with_target(ops::SWITCH_SET_VLAN, "m620-02", FaultSpec::flaky(1))
        .with_target(ops::REGISTRAR_REGISTER, "m620-03", FaultSpec::flaky(2))
        .with_target(ops::VERIFIER_QUOTE, "m620-04", FaultSpec::flaky(2))
        .with(ops::STORAGE_READ, FaultSpec::transient(0.02))
}

#[test]
fn transient_faults_are_retried_and_the_fleet_comes_up() {
    let (sim, cloud, golden) = world().nodes(4).faults(flaky_everything(0xC4A05)).build();
    let report = provision_fleet(&sim, &cloud, golden, 4);
    assert_eq!(
        report.succeeded.len(),
        4,
        "all nodes must recover from transient faults; failed: {:?}",
        report
            .failed
            .iter()
            .map(|f| format!("{}: {}", f.name, f.error))
            .collect::<Vec<_>>()
    );
    assert!(report.failed.is_empty());
    assert!(
        cloud.faults.total_injected() > 0,
        "the plan must actually have fired"
    );
    // Each flapped layer was exercised.
    assert_eq!(cloud.faults.injected(ops::BMC_POWER), 2);
    assert_eq!(cloud.faults.injected(ops::SWITCH_SET_VLAN), 1);
    assert_eq!(cloud.faults.injected(ops::REGISTRAR_REGISTER), 2);
    assert_eq!(cloud.faults.injected(ops::VERIFIER_QUOTE), 2);
}

#[test]
fn permanently_dead_bmc_degrades_gracefully() {
    let plan = FaultPlan::seeded(7).with_target(ops::BMC_POWER, "m620-02", FaultSpec::permanent());
    let (sim, cloud, golden) = world().nodes(4).faults(plan).build();
    let nodes = cloud.nodes();
    let report = provision_fleet(&sim, &cloud, golden, 4);
    // The three healthy nodes are unaffected.
    assert_eq!(report.succeeded.len(), 3);
    assert_eq!(report.failed.len(), 1);
    let failure = &report.failed[0];
    assert_eq!(failure.node, nodes[1]);
    assert_eq!(failure.name, "m620-02");
    match &failure.error {
        ProvisionError::Exhausted { op, attempts, .. } => {
            assert_eq!(op, "hil.power_cycle");
            assert!(*attempts >= 2, "got {attempts} attempts");
        }
        other => panic!("expected Exhausted, got {other}"),
    }
    // Graceful degradation: the dead node went back to the free pool —
    // it was never compromised, so it must NOT be quarantined.
    assert_eq!(cloud.hil.free_nodes(), vec![nodes[1]]);
    assert!(cloud.rejected_pool().is_empty());
}

#[test]
fn abandoned_node_leaves_a_traceable_span_event() {
    // An abandon must be reconstructible from the trace alone: which
    // node went back to Free, and why. The reconciler converges from
    // these events; a human reads the same record during an incident.
    let plan = FaultPlan::seeded(7).with_target(ops::BMC_POWER, "m620-02", FaultSpec::permanent());
    let (sim, cloud, golden) = world().nodes(4).faults(plan).build();
    let nodes = cloud.nodes();
    provision_fleet(&sim, &cloud, golden, 4);
    let event = cloud
        .spans
        .find("abandon", "m620-02")
        .expect("abandon event for the dead node");
    assert_eq!(event.attr("node"), Some(nodes[1].0.to_string().as_str()));
    let cause = event.attr("cause").expect("abandon cause attribute");
    assert!(
        cause.contains("hil.power_cycle"),
        "cause must name the exhausted op, got: {cause}"
    );
    // Healthy nodes abandon nothing.
    assert!(cloud.spans.find("abandon", "m620-01").is_none());
}

#[test]
fn chaos_runs_are_deterministic_under_a_seed() {
    let run = || {
        let (sim, cloud, golden) = world().nodes(4).faults(flaky_everything(0xDE7E12)).build();
        let report = provision_fleet(&sim, &cloud, golden, 4);
        let mut names: Vec<String> = report
            .succeeded
            .iter()
            .map(|p| p.report.node.clone())
            .collect();
        names.sort();
        (names, cloud.faults.total_injected(), sim.now().as_nanos())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the run exactly");
}

#[test]
fn empty_fault_plan_is_entirely_free() {
    // A *seeded but rule-less* plan must cost nothing: no RNG draws, no
    // extra sleeps — provisioning timings are byte-identical to the
    // default (no-plan) configuration.
    let run = |faults: FaultPlan| {
        let (sim, cloud, golden) = world().nodes(2).faults(faults).build();
        let tenant = Tenant::new(&cloud, "charlie").expect("tenant");
        let nodes = cloud.nodes();
        let p = sim
            .block_on({
                let tenant = tenant.clone();
                async move {
                    tenant
                        .provision(nodes[0], &SecurityProfile::charlie(), golden)
                        .await
                }
            })
            .expect("provisions");
        assert_eq!(cloud.faults.total_injected(), 0);
        (p.report.total().as_nanos(), sim.now().as_nanos())
    };
    assert_eq!(run(FaultPlan::none()), run(FaultPlan::seeded(0x5EED)));
}
